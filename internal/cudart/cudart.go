// Package cudart provides the CUDA-runtime-like programming model that all
// GPU BLAS libraries in this repository are written against: in-order
// streams, events, asynchronous host-device copies and asynchronous kernel
// launches, on top of the discrete-event device simulator.
//
// Semantics mirror the CUDA runtime closely:
//
//   - operations submitted to one stream execute in submission order;
//   - operations in different streams may overlap, subject to engine
//     availability (one h2d copy engine, one d2h copy engine, one compute
//     engine);
//   - Stream.WaitEvent orders all subsequently submitted work in the
//     stream after the event;
//   - Stream.Record returns an event that completes when all work
//     submitted to the stream so far has completed.
//
// Every operation optionally carries a functional payload that performs the
// real arithmetic/data movement on backed buffers, so schedulers are
// verified numerically and timed by the same code path.
package cudart

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/parallel"
	"cocopelia/internal/sim"
)

// Event is a completion marker, as in CUDA. The zero value is not useful;
// events come from Stream.Record or are pre-completed via DoneEvent.
type Event struct {
	done    bool
	waiters []*op
}

// DoneEvent returns an already-completed event.
func DoneEvent() *Event { return &Event{done: true} }

// Done reports whether the event has completed.
func (e *Event) Done() bool { return e.done }

// op is one scheduled stream operation.
type op struct {
	rt       *Runtime
	deps     int
	submit   func(done func())
	complete *Event
}

func (o *op) depSatisfied() {
	o.deps--
	if o.deps == 0 {
		o.rt.launch(o)
	}
}

// Runtime owns the streams and buffers of one simulated process.
type Runtime struct {
	dev         *device.Device
	outstanding int
	streams     int
	payloadPool *parallel.Pool
}

// New creates a runtime bound to a device.
func New(dev *device.Device) *Runtime { return &Runtime{dev: dev} }

// SetPayloadPool installs a worker pool for the functional GEMM payloads
// of backed buffers. The blocked engine is bitwise deterministic across
// worker counts, so the pool changes only wall-clock time, never results.
// A nil pool (the default) runs payloads inline.
func (rt *Runtime) SetPayloadPool(p *parallel.Pool) { rt.payloadPool = p }

// Device returns the underlying simulated device.
func (rt *Runtime) Device() *device.Device { return rt.dev }

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.dev.Engine() }

// Now returns the current virtual time.
func (rt *Runtime) Now() sim.Time { return rt.dev.Engine().Now() }

// launch hands a ready op to the hardware.
func (rt *Runtime) launch(o *op) {
	o.submit(func() {
		rt.outstanding--
		fire(o.complete)
	})
}

// fire completes an event and releases its waiters.
func fire(e *Event) {
	if e.done {
		return
	}
	e.done = true
	ws := e.waiters
	e.waiters = nil
	for _, w := range ws {
		w.depSatisfied()
	}
}

// addWaiter registers o to run after e (no-op when e already completed;
// the caller must have counted the dependency before calling).
func addWaiter(e *Event, o *op) bool {
	if e == nil || e.done {
		return false
	}
	e.waiters = append(e.waiters, o)
	return true
}

// Stream is an in-order command queue.
type Stream struct {
	rt    *Runtime
	id    int
	tail  *Event
	waits []*Event
}

// NewStream creates a stream.
func (rt *Runtime) NewStream() *Stream {
	rt.streams++
	return &Stream{rt: rt, id: rt.streams, tail: DoneEvent()}
}

// ID returns a small integer identifying the stream (useful in traces).
func (s *Stream) ID() int { return s.id }

// WaitEvent orders all work submitted to s after this call behind ev.
func (s *Stream) WaitEvent(ev *Event) {
	if ev == nil || ev.done {
		return
	}
	s.waits = append(s.waits, ev)
}

// Record returns an event that completes when all work submitted to s so
// far has completed.
func (s *Stream) Record() *Event { return s.tail }

// enqueue appends an operation to the stream. submit is invoked when all
// dependencies are satisfied and must call its argument exactly once, when
// the hardware operation completes.
func (s *Stream) enqueue(submit func(done func())) *Event {
	o := &op{rt: s.rt, submit: submit, complete: &Event{}}
	s.rt.outstanding++
	deps := 0
	if addWaiter(s.tail, o) {
		deps++
	}
	for _, w := range s.waits {
		if addWaiter(w, o) {
			deps++
		}
	}
	s.waits = nil
	s.tail = o.complete
	if deps == 0 {
		o.deps = 1
		// Defer through the engine so submission order among independent
		// ops is preserved and callers never re-enter the hardware model.
		s.rt.Engine().After(0, o.depSatisfied)
	} else {
		o.deps = deps
	}
	return o.complete
}

// Callback enqueues a zero-duration host function that runs in stream
// order (like cudaLaunchHostFunc).
func (s *Stream) Callback(fn func()) *Event {
	return s.enqueue(func(done func()) {
		if fn != nil {
			fn()
		}
		done()
	})
}

// Sync runs the simulation until every submitted operation has completed.
// It returns the virtual time, or an error if operations remain blocked on
// dependencies that can never fire (a scheduling bug: a dependency cycle or
// an event that is never recorded).
func (rt *Runtime) Sync() (sim.Time, error) {
	end := rt.Engine().Run()
	if rt.outstanding != 0 {
		return end, fmt.Errorf("cudart: deadlock: %d operations still blocked after drain", rt.outstanding)
	}
	return end, nil
}

// DevBuffer is typed device memory. Backed buffers carry real element
// storage for functional runs; unbacked buffers are accounting-only and are
// used for paper-scale timing runs.
type DevBuffer struct {
	mem   *device.Buffer
	dt    kernelmodel.Dtype
	elems int64
	f64   []float64
	f32   []float32
}

// Dtype returns the buffer element type.
func (b *DevBuffer) Dtype() kernelmodel.Dtype { return b.dt }

// Elems returns the buffer capacity in elements.
func (b *DevBuffer) Elems() int64 { return b.elems }

// Backed reports whether the buffer carries real storage.
func (b *DevBuffer) Backed() bool { return b.f64 != nil || b.f32 != nil }

// F64 exposes the backing storage of a backed float64 buffer (nil
// otherwise). Intended for test verification, not scheduler logic.
func (b *DevBuffer) F64() []float64 { return b.f64 }

// F32 exposes the backing storage of a backed float32 buffer.
func (b *DevBuffer) F32() []float32 { return b.f32 }

// Malloc allocates a device buffer of elems elements. When backed is true
// the buffer carries real storage (functional mode).
func (rt *Runtime) Malloc(dt kernelmodel.Dtype, elems int64, backed bool) (*DevBuffer, error) {
	if elems < 0 {
		return nil, fmt.Errorf("cudart: negative element count %d", elems)
	}
	mem, err := rt.dev.Malloc(elems * dt.Size())
	if err != nil {
		return nil, err
	}
	b := &DevBuffer{mem: mem, dt: dt, elems: elems}
	if backed {
		if dt == kernelmodel.F64 {
			b.f64 = make([]float64, elems)
		} else {
			b.f32 = make([]float32, elems)
		}
	}
	return b, nil
}

// Free releases a device buffer.
func (rt *Runtime) Free(b *DevBuffer) error {
	if b == nil {
		return errors.New("cudart: free of nil buffer")
	}
	b.f64, b.f32 = nil, nil
	return rt.dev.Free(b.mem)
}

// memcpyBounds validates an elems-sized access at off into b.
func memcpyBounds(b *DevBuffer, off, elems int64, what string) error {
	if b == nil {
		return fmt.Errorf("cudart: %s: nil device buffer", what)
	}
	if off < 0 || elems < 0 || off+elems > b.elems {
		return fmt.Errorf("cudart: %s: range [%d, %d) outside buffer of %d elems",
			what, off, off+elems, b.elems)
	}
	return nil
}

// MemcpyH2DAsync enqueues a 1-D host-to-device copy of elems elements from
// hostF64/hostF32 (per the buffer dtype) into dst at dstOff.
func (s *Stream) MemcpyH2DAsync(dst *DevBuffer, dstOff int64, hostF64 []float64, hostF32 []float32, elems int64) (*Event, error) {
	if err := memcpyBounds(dst, dstOff, elems, "h2d"); err != nil {
		return nil, err
	}
	bytes := elems * dst.dt.Size()
	payload := func() {
		switch {
		case dst.f64 != nil && hostF64 != nil:
			copy(dst.f64[dstOff:dstOff+elems], hostF64[:elems])
		case dst.f32 != nil && hostF32 != nil:
			copy(dst.f32[dstOff:dstOff+elems], hostF32[:elems])
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.Link().Submit(machine.H2D, bytes, func() {
			payload()
			done()
		})
	})
	return ev, nil
}

// MemcpyD2HAsync enqueues a 1-D device-to-host copy.
func (s *Stream) MemcpyD2HAsync(hostF64 []float64, hostF32 []float32, src *DevBuffer, srcOff, elems int64) (*Event, error) {
	if err := memcpyBounds(src, srcOff, elems, "d2h"); err != nil {
		return nil, err
	}
	bytes := elems * src.dt.Size()
	payload := func() {
		switch {
		case src.f64 != nil && hostF64 != nil:
			copy(hostF64[:elems], src.f64[srcOff:srcOff+elems])
		case src.f32 != nil && hostF32 != nil:
			copy(hostF32[:elems], src.f32[srcOff:srcOff+elems])
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.Link().Submit(machine.D2H, bytes, func() {
			payload()
			done()
		})
	})
	return ev, nil
}

// matrixArgs describes one side of a 2-D (sub)matrix copy, in the manner of
// cublasSetMatrixAsync / cublasGetMatrixAsync: rows x cols elements,
// column-major with a leading dimension.
func check2D(rows, cols int, ld int, what string) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("cudart: %s: negative dims %dx%d", what, rows, cols)
	}
	if ld < max(1, rows) {
		return fmt.Errorf("cudart: %s: ld %d < rows %d", what, ld, rows)
	}
	return nil
}

// SetMatrixAsync enqueues a 2-D h2d copy of a rows x cols column-major
// submatrix from host (leading dimension ldh) into dst at element offset
// dstOff with leading dimension ldd. Exactly one of hostF64/hostF32 must
// match the buffer dtype in functional runs.
func (s *Stream) SetMatrixAsync(rows, cols int, hostF64 []float64, hostF32 []float32, ldh int, dst *DevBuffer, dstOff int64, ldd int) (*Event, error) {
	if err := check2D(rows, cols, ldh, "setmatrix host"); err != nil {
		return nil, err
	}
	if err := check2D(rows, cols, ldd, "setmatrix device"); err != nil {
		return nil, err
	}
	need := int64(0)
	if cols > 0 {
		need = int64(cols-1)*int64(ldd) + int64(rows)
	}
	if err := memcpyBounds(dst, dstOff, need, "setmatrix"); err != nil {
		return nil, err
	}
	bytes := int64(rows) * int64(cols) * dst.dt.Size()
	payload := func() {
		for j := 0; j < cols; j++ {
			d := dstOff + int64(j)*int64(ldd)
			h := j * ldh
			switch {
			case dst.f64 != nil && hostF64 != nil:
				copy(dst.f64[d:d+int64(rows)], hostF64[h:h+rows])
			case dst.f32 != nil && hostF32 != nil:
				copy(dst.f32[d:d+int64(rows)], hostF32[h:h+rows])
			}
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.Link().Submit(machine.H2D, bytes, func() {
			payload()
			done()
		})
	})
	return ev, nil
}

// GetMatrixAsync enqueues a 2-D d2h copy (the cublasGetMatrixAsync analog).
func (s *Stream) GetMatrixAsync(rows, cols int, src *DevBuffer, srcOff int64, lds int, hostF64 []float64, hostF32 []float32, ldh int) (*Event, error) {
	if err := check2D(rows, cols, lds, "getmatrix device"); err != nil {
		return nil, err
	}
	if err := check2D(rows, cols, ldh, "getmatrix host"); err != nil {
		return nil, err
	}
	need := int64(0)
	if cols > 0 {
		need = int64(cols-1)*int64(lds) + int64(rows)
	}
	if err := memcpyBounds(src, srcOff, need, "getmatrix"); err != nil {
		return nil, err
	}
	bytes := int64(rows) * int64(cols) * src.dt.Size()
	payload := func() {
		for j := 0; j < cols; j++ {
			d := srcOff + int64(j)*int64(lds)
			h := j * ldh
			switch {
			case src.f64 != nil && hostF64 != nil:
				copy(hostF64[h:h+rows], src.f64[d:d+int64(rows)])
			case src.f32 != nil && hostF32 != nil:
				copy(hostF32[h:h+rows], src.f32[d:d+int64(rows)])
			}
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.Link().Submit(machine.D2H, bytes, func() {
			payload()
			done()
		})
	})
	return ev, nil
}

// KernelAsync enqueues a generic kernel with an explicit duration and an
// optional functional payload. Comparator libraries use it to model their
// own runtime overheads (e.g. tile-management work) on the compute engine.
func (s *Stream) KernelAsync(name string, duration float64, payload func()) (*Event, error) {
	if duration < 0 {
		return nil, fmt.Errorf("cudart: negative kernel duration %g", duration)
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.LaunchKernel(name, duration, payload, done)
	})
	return ev, nil
}

// GemmAsync enqueues C = alpha*op(A)*op(B) + beta*C on the stream, where
// the operands are column-major submatrices of device buffers. Timing comes
// from the kernel ground-truth model; arithmetic runs on backed buffers.
func (s *Stream) GemmAsync(transA, transB byte, m, n, k int,
	alpha float64, a *DevBuffer, offA int64, lda int,
	b *DevBuffer, offB int64, ldb int,
	beta float64, c *DevBuffer, offC int64, ldc int) (*Event, error) {

	dt := c.dt
	if a.dt != dt || b.dt != dt {
		return nil, errors.New("cudart: gemm operand dtype mismatch")
	}
	dur := kernelmodel.GemmTime(&s.rt.dev.Testbed().GPU, dt, m, n, k)
	name := "dgemm"
	if dt == kernelmodel.F32 {
		name = "sgemm"
	}
	var payload func()
	if c.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.GemmParallel(s.rt.payloadPool, transA, transB, m, n, k, alpha,
					a.f64[offA:], lda, b.f64[offB:], ldb, beta, c.f64[offC:], ldc)
			} else {
				err = blas.GemmParallel(s.rt.payloadPool, transA, transB, m, n, k, float32(alpha),
					a.f32[offA:], lda, b.f32[offB:], ldb, float32(beta), c.f32[offC:], ldc)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: gemm payload: %v", err))
			}
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.LaunchKernel(name, dur, payload, done)
	})
	return ev, nil
}

// AxpyAsync enqueues y += alpha*x over device vectors.
func (s *Stream) AxpyAsync(n int, alpha float64, x *DevBuffer, offX int64, y *DevBuffer, offY int64) (*Event, error) {
	if x.dt != y.dt {
		return nil, errors.New("cudart: axpy operand dtype mismatch")
	}
	if err := memcpyBounds(x, offX, int64(n), "axpy x"); err != nil {
		return nil, err
	}
	if err := memcpyBounds(y, offY, int64(n), "axpy y"); err != nil {
		return nil, err
	}
	dt := y.dt
	dur := kernelmodel.AxpyTime(&s.rt.dev.Testbed().GPU, dt, n)
	name := "daxpy"
	if dt == kernelmodel.F32 {
		name = "saxpy"
	}
	var payload func()
	if y.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Daxpy(n, alpha, x.f64[offX:], 1, y.f64[offY:], 1)
			} else {
				err = blas.Saxpy(n, float32(alpha), x.f32[offX:], 1, y.f32[offY:], 1)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: axpy payload: %v", err))
			}
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.LaunchKernel(name, dur, payload, done)
	})
	return ev, nil
}

// GemvAsync enqueues y = alpha*op(A)*x + beta*y over device operands.
func (s *Stream) GemvAsync(trans byte, m, n int, alpha float64,
	a *DevBuffer, offA int64, lda int, x *DevBuffer, offX int64,
	beta float64, y *DevBuffer, offY int64) (*Event, error) {
	if a.dt != x.dt || x.dt != y.dt {
		return nil, errors.New("cudart: gemv operand dtype mismatch")
	}
	dt := y.dt
	dur := kernelmodel.GemvTime(&s.rt.dev.Testbed().GPU, dt, m, n)
	var payload func()
	if y.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Dgemv(trans, m, n, alpha, a.f64[offA:], lda, x.f64[offX:], 1, beta, y.f64[offY:], 1)
			} else {
				err = blas.Gemv(trans, m, n, float32(alpha), a.f32[offA:], lda, x.f32[offX:], 1, float32(beta), y.f32[offY:], 1)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: gemv payload: %v", err))
			}
		}
	}
	ev := s.enqueue(func(done func()) {
		s.rt.dev.LaunchKernel("gemv", dur, payload, done)
	})
	return ev, nil
}
