// Package cudart provides the CUDA-runtime-like programming model that all
// GPU BLAS libraries in this repository are written against: in-order
// streams, events, asynchronous host-device copies and asynchronous kernel
// launches, on top of the discrete-event device simulator.
//
// Semantics mirror the CUDA runtime closely:
//
//   - operations submitted to one stream execute in submission order;
//   - operations in different streams may overlap, subject to engine
//     availability (one h2d copy engine, one d2h copy engine, one compute
//     engine);
//   - Stream.WaitEvent orders all subsequently submitted work in the
//     stream after the event;
//   - Stream.Record returns an event that completes when all work
//     submitted to the stream so far has completed.
//
// Every operation optionally carries a functional payload that performs the
// real arithmetic/data movement on backed buffers, so schedulers are
// verified numerically and timed by the same code path.
//
// The launch path is allocation-free in steady state: per-launch op objects
// and their completion events come from runtime-owned free lists, operand
// descriptions live in fields of the op (dispatched by kind) instead of
// per-call closures, and the dependency-edge slices reuse their backing
// arrays. Ops recycle as soon as their hardware work completes; events
// recycle at the next successful Sync, which is also when every stream's
// tail is reset to the shared pre-completed event.
package cudart

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/parallel"
	"cocopelia/internal/sim"
)

// Event is a completion marker, as in CUDA. The zero value is not useful;
// events come from Stream.Record or are pre-completed via DoneEvent.
//
// Lifetime: an *Event returned by this package is valid until the
// Runtime.Sync call that drains it returns successfully; at that point the
// runtime recycles the object for later launches and holders must drop
// their references (every scheduler in this repository consumes its events
// within one enqueue+Sync cycle).
// Nearly every event has exactly one waiter — the next op chained on a
// stream tail — so the first waiter lives in an inline slot and only
// fan-outs of two or more touch the overflow slice. Steady-state replays
// therefore allocate no waiter arrays at all.
type Event struct {
	done    bool
	w0      *op   // first registered waiter (fires before the overflow)
	waiters []*op // second and later waiters, in registration order
}

// doneEvent is the shared pre-completed event. It is immutable in effect:
// fire is a no-op on a done event and addWaiter never appends to one.
var doneEvent = &Event{done: true}

// DoneEvent returns an already-completed event.
func DoneEvent() *Event { return doneEvent }

// Done reports whether the event has completed.
func (e *Event) Done() bool { return e.done }

// opKind selects what an op does when its dependencies are satisfied. The
// operands live in fields of the op itself, so enqueueing an operation
// allocates no per-call closures.
type opKind uint8

const (
	opCallback opKind = iota // host function, zero duration
	opKernel                 // compute-engine kernel
	opH2D                    // 1-D host-to-device copy
	opD2H                    // 1-D device-to-host copy
	opSet2D                  // 2-D host-to-device submatrix copy
	opGet2D                  // 2-D device-to-host submatrix copy
)

// op is one scheduled stream operation. Ops are recycled through the
// runtime free list the moment their hardware work completes.
//
// The layout is tuned for the firing path, which touches hundreds of
// thousands of scattered op objects per replay: the fields depSatisfied,
// launch and finish read (pointers first, then the packed small scalars)
// sit together at the front, and the functional operands of backed
// transfers live behind the host pointer in a separate pooled hostWindow,
// keeping the op itself in the 96-byte malloc class. Timing-only
// transfers — the overwhelming majority in paper-scale sweeps — never
// allocate a window, so the replay working set stays dense.
type op struct {
	rt       *Runtime
	complete *Event

	// depFn and hwDone are method values created once per op object; they
	// survive free-list recycling, so the steady-state launch path pays no
	// closure allocations.
	depFn  func()
	hwDone func()

	payload func()
	buf     *DevBuffer
	host    *hostWindow // functional transfer operands; nil when timing-only

	// deps is the outstanding-dependency count (valid between enqueue and
	// launch).
	deps int32
	kind opKind
	dir  machine.LinkDir

	// kernel and callback operands.
	duration float64
	name     string

	bytes int64 // transfer volume
}

// hostWindow carries the host-side operands of a functional (backed)
// transfer: the host slices plus the 1-D or 2-D window geometry. It exists
// only while its op is in flight and recycles through the runtime's window
// free list.
type hostWindow struct {
	f64        []float64
	f32        []float32
	off        int64
	elems      int64
	rows, cols int32
	ldh, ldd   int32
}

//cocolint:hotpath
func (o *op) depSatisfied() {
	o.deps--
	if o.deps == 0 {
		o.rt.launch(o)
	}
}

// hwComplete is the hardware-completion callback: it performs the data
// movement of transfer ops (kernel payloads run inside the device model)
// and then finishes the op.
//
//cocolint:hotpath
func (o *op) hwComplete() {
	switch o.kind {
	case opH2D, opD2H, opSet2D, opGet2D:
		o.runCopy()
	}
	o.finish()
}

// finish retires a completed op: it is recycled before its completion event
// fires, so waiters launched by the event can reuse the object immediately.
//
//cocolint:hotpath
func (o *op) finish() {
	rt := o.rt
	rt.outstanding--
	ev := o.complete
	rt.recycleOp(o)
	fire(ev)
}

// runCopy performs the functional data movement of a transfer op on backed
// buffers. Timing-only transfers carry no host window and return
// immediately: there is nothing to move, and paper-scale sweeps issue
// millions of such transfers.
func (o *op) runCopy() {
	w := o.host
	if w == nil {
		return
	}
	b := o.buf
	switch o.kind {
	case opH2D:
		switch {
		case b.f64 != nil && w.f64 != nil:
			copy(b.f64[w.off:w.off+w.elems], w.f64[:w.elems])
		case b.f32 != nil && w.f32 != nil:
			copy(b.f32[w.off:w.off+w.elems], w.f32[:w.elems])
		}
	case opD2H:
		switch {
		case b.f64 != nil && w.f64 != nil:
			copy(w.f64[:w.elems], b.f64[w.off:w.off+w.elems])
		case b.f32 != nil && w.f32 != nil:
			copy(w.f32[:w.elems], b.f32[w.off:w.off+w.elems])
		}
	case opSet2D:
		rows := int(w.rows)
		for j := 0; j < int(w.cols); j++ {
			d := w.off + int64(j)*int64(w.ldd)
			h := j * int(w.ldh)
			switch {
			case b.f64 != nil && w.f64 != nil:
				copy(b.f64[d:d+int64(rows)], w.f64[h:h+rows])
			case b.f32 != nil && w.f32 != nil:
				copy(b.f32[d:d+int64(rows)], w.f32[h:h+rows])
			}
		}
	case opGet2D:
		rows := int(w.rows)
		for j := 0; j < int(w.cols); j++ {
			d := w.off + int64(j)*int64(w.ldd)
			h := j * int(w.ldh)
			switch {
			case b.f64 != nil && w.f64 != nil:
				copy(w.f64[h:h+rows], b.f64[d:d+int64(rows)])
			case b.f32 != nil && w.f32 != nil:
				copy(w.f32[h:h+rows], b.f32[d:d+int64(rows)])
			}
		}
	}
}

// Runtime owns the streams and buffers of one simulated process.
type Runtime struct {
	dev         *device.Device
	outstanding int
	streams     int
	streamList  []*Stream
	payloadPool *parallel.Pool
	// payloadPolicy selects the CPU kernel numerics for backed payloads:
	// the default blas.KernelExact keeps the bitwise oracle contract;
	// blas.KernelFMA opts into the fused (ULP-bounded) micro-kernels.
	payloadPolicy blas.KernelPolicy

	// opFree recycles op objects the moment their hardware work completes;
	// evFree recycles completion events at Sync, with evLive tracking the
	// events handed out since the last Sync. Fresh events are carved from
	// evSlab blocks rather than allocated individually: a replay keeps up to
	// ~10^5 events live at once, and contiguous slabs make the fire/wait
	// paths' event touches neighbours instead of scattered heap objects.
	// Fresh ops are carved from contiguous opSlab blocks, like events: the
	// dependency-firing path chases op pointers hundreds of thousands of
	// times per replay, and slab-packed neighbours keep it in cache where
	// individually allocated ops scatter across the heap.
	opFree  []*op
	opSlab  []op
	evFree  []*Event
	evLive  []*Event
	evSlab  []Event
	winFree []*hostWindow

	// kernelTimes memoizes the pure kernel-model duration lookups: a tiled
	// sweep launches thousands of identically-shaped kernels, and the
	// model's exp/log/cbrt evaluation dominates an otherwise trivial path.
	// Keys pack (routine, dtype, dims) into one integer — integer map
	// hashing is markedly cheaper than hashing a four-field struct — and
	// ktLast short-circuits the map entirely for the common case of
	// back-to-back launches of the same shape.
	kernelTimes map[int64]float64
	ktLastKey   int64
	ktLastDur   float64
}

// Kernel-time key layout: routine tag | dtype | 20-bit dims. Dimensions at
// or above ktDimLimit bypass the memo (the model evaluation is pure, so
// skipping the cache never changes results).
const (
	ktDimLimit = 1 << 20
	ktGemm     = int64(1) << 61
	ktGemv     = int64(2) << 61
	ktAxpy     = int64(3) << 61
)

// kernelTime returns the memoized duration for key, evaluating the model on
// a miss. key must be non-zero (the routine tag guarantees this), so the
// zero value of ktLastKey never aliases a real entry.
func (rt *Runtime) kernelTime(key int64, eval func() float64) float64 {
	if key == rt.ktLastKey {
		return rt.ktLastDur
	}
	dur, ok := rt.kernelTimes[key]
	if !ok {
		dur = eval()
		if rt.kernelTimes == nil {
			rt.kernelTimes = make(map[int64]float64)
		}
		rt.kernelTimes[key] = dur
	}
	rt.ktLastKey, rt.ktLastDur = key, dur
	return dur
}

// gemmTime returns the memoized gemm kernel duration for the shape.
func (rt *Runtime) gemmTime(dt kernelmodel.Dtype, m, n, k int) float64 {
	if m >= ktDimLimit || n >= ktDimLimit || k >= ktDimLimit {
		return kernelmodel.GemmTime(&rt.dev.Testbed().GPU, dt, m, n, k)
	}
	key := ktGemm | int64(dt)<<60 | int64(m)<<40 | int64(n)<<20 | int64(k)
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.GemmTime(&rt.dev.Testbed().GPU, dt, m, n, k)
	})
}

// gemvTime returns the memoized gemv kernel duration for the shape.
func (rt *Runtime) gemvTime(dt kernelmodel.Dtype, m, n int) float64 {
	if m >= ktDimLimit || n >= ktDimLimit {
		return kernelmodel.GemvTime(&rt.dev.Testbed().GPU, dt, m, n)
	}
	key := ktGemv | int64(dt)<<60 | int64(m)<<40 | int64(n)<<20
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.GemvTime(&rt.dev.Testbed().GPU, dt, m, n)
	})
}

// axpyTime returns the memoized axpy kernel duration for the length.
func (rt *Runtime) axpyTime(dt kernelmodel.Dtype, n int) float64 {
	if n >= ktDimLimit {
		return kernelmodel.AxpyTime(&rt.dev.Testbed().GPU, dt, n)
	}
	key := ktAxpy | int64(dt)<<60 | int64(n)<<20
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.AxpyTime(&rt.dev.Testbed().GPU, dt, n)
	})
}

// New creates a runtime bound to a device.
func New(dev *device.Device) *Runtime { return &Runtime{dev: dev} }

// Reset rebinds the runtime to a fresh device while keeping its warmed
// object pools: the op and event free lists, and — when the new device runs
// the same testbed — the memoized kernel durations. Streams of the previous
// run are dropped. Operations still pending (after a failed Sync) are
// abandoned exactly as discarding the runtime would abandon them, with
// their live events recycled. After Reset the runtime behaves identically
// to New(dev); only allocation behaviour differs.
func (rt *Runtime) Reset(dev *device.Device) {
	if rt.dev == nil || dev == nil || rt.dev.Testbed() != dev.Testbed() {
		rt.kernelTimes = nil
		rt.ktLastKey, rt.ktLastDur = 0, 0
	}
	rt.dev = dev
	rt.outstanding = 0
	rt.streams = 0
	rt.payloadPool = nil
	rt.payloadPolicy = blas.KernelExact
	for i := range rt.streamList {
		rt.streamList[i] = nil
	}
	rt.streamList = rt.streamList[:0]
	for i, e := range rt.evLive {
		rt.evLive[i] = nil
		e.done = false
		e.w0 = nil
		e.waiters = e.waiters[:0]
		rt.evFree = append(rt.evFree, e)
	}
	rt.evLive = rt.evLive[:0]
}

// SetPayloadPool installs a worker pool for the functional GEMM payloads
// of backed buffers. The blocked engine is bitwise deterministic across
// worker counts, so the pool changes only wall-clock time, never results.
// A nil pool (the default) runs payloads inline.
func (rt *Runtime) SetPayloadPool(p *parallel.Pool) { rt.payloadPool = p }

// SetPayloadPolicy selects the CPU kernel numerics for backed payloads.
// The default blas.KernelExact reproduces the GemmNaive oracle bit for
// bit; blas.KernelFMA routes to the fused micro-kernels (FMA/NEON),
// which are ULP-bounded against the oracle and still bitwise
// reproducible across worker counts. Reset restores the default.
func (rt *Runtime) SetPayloadPolicy(p blas.KernelPolicy) { rt.payloadPolicy = p }

// PayloadPolicy reports the kernel policy applied to backed payloads.
func (rt *Runtime) PayloadPolicy() blas.KernelPolicy { return rt.payloadPolicy }

// Device returns the underlying simulated device.
func (rt *Runtime) Device() *device.Device { return rt.dev }

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.dev.Engine() }

// Now returns the current virtual time.
func (rt *Runtime) Now() sim.Time { return rt.dev.Engine().Now() }

// allocOp returns a recycled (or fresh) op of the given kind with a live
// completion event attached.
func (rt *Runtime) allocOp(kind opKind) *op {
	var o *op
	if n := len(rt.opFree); n > 0 {
		o = rt.opFree[n-1]
		rt.opFree[n-1] = nil
		rt.opFree = rt.opFree[:n-1]
	} else {
		if len(rt.opSlab) == 0 {
			rt.opSlab = make([]op, 512)
		}
		o = &rt.opSlab[0]
		rt.opSlab = rt.opSlab[1:]
		o.rt = rt
		o.depFn = o.depSatisfied
		o.hwDone = o.hwComplete
	}
	o.kind = kind
	o.complete = rt.allocEvent()
	return o
}

// recycleOp clears an op's references and parks it on the free list,
// returning any host window to the window pool.
func (rt *Runtime) recycleOp(o *op) {
	o.complete = nil
	o.name = ""
	o.payload = nil
	o.buf = nil
	if w := o.host; w != nil {
		o.host = nil
		*w = hostWindow{}
		rt.winFree = append(rt.winFree, w)
	}
	rt.opFree = append(rt.opFree, o)
}

// allocWindow returns a recycled (or fresh) zeroed host window for a
// functional transfer.
func (rt *Runtime) allocWindow() *hostWindow {
	if n := len(rt.winFree); n > 0 {
		w := rt.winFree[n-1]
		rt.winFree[n-1] = nil
		rt.winFree = rt.winFree[:n-1]
		return w
	}
	return &hostWindow{}
}

// needsWindow reports whether a transfer between buf and the given host
// slices can move data (backed buffer and a host side present) and so needs
// its operands carried on the op.
func needsWindow(buf *DevBuffer, hostF64 []float64, hostF32 []float32) bool {
	return (buf.f64 != nil || buf.f32 != nil) && (hostF64 != nil || hostF32 != nil)
}

// allocEvent returns a recycled (or fresh) incomplete event, tracked for
// recycling at the next successful Sync.
func (rt *Runtime) allocEvent() *Event {
	var e *Event
	if n := len(rt.evFree); n > 0 {
		e = rt.evFree[n-1]
		rt.evFree[n-1] = nil
		rt.evFree = rt.evFree[:n-1]
		e.done = false
	} else {
		if len(rt.evSlab) == 0 {
			rt.evSlab = make([]Event, 1024)
		}
		e = &rt.evSlab[0]
		rt.evSlab = rt.evSlab[1:]
	}
	rt.evLive = append(rt.evLive, e)
	return e
}

// launch hands a ready op to the hardware.
//
//cocolint:hotpath
func (rt *Runtime) launch(o *op) {
	switch o.kind {
	case opCallback:
		if o.payload != nil {
			//lint:ignore hotpath callback payloads are caller-provided host functions; schedulers keep them off the steady-state replay path
			o.payload()
		}
		o.finish()
	case opKernel:
		rt.dev.LaunchKernel(o.name, o.duration, o.payload, o.hwDone)
	default:
		rt.dev.Link().Submit(o.dir, o.bytes, o.hwDone)
	}
}

// fire completes an event and releases its waiters, decrementing their
// dependency counters and launching every op that reaches zero. The waiters
// backing array is kept for reuse: no appends can race the drain because a
// done event never accepts new waiters.
//
//cocolint:hotpath
func fire(e *Event) {
	if e.done {
		return
	}
	e.done = true
	if w := e.w0; w != nil {
		e.w0 = nil
		w.depSatisfied()
	}
	if len(e.waiters) > 0 {
		ws := e.waiters
		e.waiters = e.waiters[:0]
		for _, o := range ws {
			o.depSatisfied()
		}
	}
}

// addWaiter registers o to run after e (no-op when e already completed;
// the caller must have counted the dependency before calling). The first
// waiter takes the inline slot; registration order is preserved because
// fire drains the slot before the overflow slice.
func addWaiter(e *Event, o *op) bool {
	if e == nil || e.done {
		return false
	}
	if e.w0 == nil && len(e.waiters) == 0 {
		e.w0 = o
		return true
	}
	e.waiters = append(e.waiters, o)
	return true
}

// Stream is an in-order command queue.
type Stream struct {
	rt    *Runtime
	id    int
	tail  *Event
	waits []*Event
}

// NewStream creates a stream. The runtime tracks it so Sync can reset its
// tail when the completed batch's events are recycled.
func (rt *Runtime) NewStream() *Stream {
	rt.streams++
	s := &Stream{rt: rt, id: rt.streams, tail: doneEvent}
	rt.streamList = append(rt.streamList, s)
	return s
}

// ID returns a small integer identifying the stream (useful in traces).
func (s *Stream) ID() int { return s.id }

// TruncateStreams drops every stream created after the first n and rewinds
// the stream-id counter, so the next NewStream call hands out the same id a
// fresh runtime's n+1-th stream would get. Callers that pool a runtime
// together with a context holding n long-lived streams use it to shed the
// per-call streams comparator libraries create, keeping both the Sync
// tail-reset loop and the id sequence identical across pooled repetitions.
// It must only be called between batches (no operations outstanding).
func (rt *Runtime) TruncateStreams(n int) {
	if n > len(rt.streamList) {
		n = len(rt.streamList)
	}
	for i := n; i < len(rt.streamList); i++ {
		rt.streamList[i] = nil
	}
	rt.streamList = rt.streamList[:n]
	rt.streams = n
}

// WaitEvent orders all work submitted to s after this call behind ev.
//
//cocolint:hotpath
func (s *Stream) WaitEvent(ev *Event) {
	if ev == nil || ev.done {
		return
	}
	//lint:ignore hotpath waits drains back to length zero at every enqueue; the backing array grows only to the widest wait fan-in
	s.waits = append(s.waits, ev)
}

// Record returns an event that completes when all work submitted to s so
// far has completed.
func (s *Stream) Record() *Event { return s.tail }

// enqueue appends a filled op to the stream, wiring its dependency edges.
//
//cocolint:hotpath
func (s *Stream) enqueue(o *op) *Event {
	rt := s.rt
	rt.outstanding++
	deps := int32(0)
	if addWaiter(s.tail, o) {
		deps++
	}
	for _, w := range s.waits {
		if addWaiter(w, o) {
			deps++
		}
	}
	s.waits = s.waits[:0]
	s.tail = o.complete
	if deps == 0 {
		o.deps = 1
		// Defer through the engine so submission order among independent
		// ops is preserved and callers never re-enter the hardware model.
		rt.Engine().After(0, o.depFn)
	} else {
		o.deps = deps
	}
	return o.complete
}

// TransferOp enqueues a pre-validated timing-only transfer: bytes move in
// direction dir through device buffer buf with no host-side window. It
// produces the identical op, dependency and event structure as the checked
// Memcpy/SetMatrix/GetMatrix entry points do on unbacked buffers — the plan
// replay tape uses it to skip per-op validation and operand resolution.
//
//cocolint:hotpath
func (s *Stream) TransferOp(dir machine.LinkDir, bytes int64, buf *DevBuffer) *Event {
	kind := opH2D
	if dir == machine.D2H {
		kind = opD2H
	}
	o := s.rt.allocOp(kind)
	o.dir, o.bytes = dir, bytes
	o.buf = buf
	return s.enqueue(o)
}

// KernelOp enqueues a payload-free kernel with a precomputed duration — the
// tape replay analog of GemmAsync/GemvAsync/AxpyAsync on unbacked buffers,
// whose payloads are nil and whose durations are pure functions of the
// launch shape.
//
//cocolint:hotpath
func (s *Stream) KernelOp(name string, duration float64) *Event {
	o := s.rt.allocOp(opKernel)
	o.name, o.duration = name, duration
	return s.enqueue(o)
}

// Callback enqueues a zero-duration host function that runs in stream
// order (like cudaLaunchHostFunc).
func (s *Stream) Callback(fn func()) *Event {
	o := s.rt.allocOp(opCallback)
	o.payload = fn
	return s.enqueue(o)
}

// Sync runs the simulation until every submitted operation has completed.
// It returns the virtual time, or an error if operations remain blocked on
// dependencies that can never fire (a scheduling bug: a dependency cycle or
// an event that is never recorded).
//
// On success the completed batch's events are recycled and every stream's
// tail resets to the pre-completed event, so event handles returned before
// this call must not be used afterwards.
//
//cocolint:hotpath
func (rt *Runtime) Sync() (sim.Time, error) {
	end := rt.Engine().Run()
	if rt.outstanding != 0 {
		//lint:ignore hotpath deadlock is a scheduling bug; this error path runs at most once per failed batch
		return end, fmt.Errorf("cudart: deadlock: %d operations still blocked after drain", rt.outstanding)
	}
	for i, e := range rt.evLive {
		rt.evLive[i] = nil
		e.w0 = nil
		e.waiters = e.waiters[:0]
		//lint:ignore hotpath evFree reuses its backing array; it grows only until the deepest batch of the run
		rt.evFree = append(rt.evFree, e)
	}
	rt.evLive = rt.evLive[:0]
	for _, s := range rt.streamList {
		s.tail = doneEvent
		s.waits = s.waits[:0]
	}
	return end, nil
}

// DevBuffer is typed device memory. Backed buffers carry real element
// storage for functional runs; unbacked buffers are accounting-only and are
// used for paper-scale timing runs.
type DevBuffer struct {
	mem   *device.Buffer
	dt    kernelmodel.Dtype
	elems int64
	f64   []float64
	f32   []float32
}

// Dtype returns the buffer element type.
func (b *DevBuffer) Dtype() kernelmodel.Dtype { return b.dt }

// Elems returns the buffer capacity in elements.
func (b *DevBuffer) Elems() int64 { return b.elems }

// Backed reports whether the buffer carries real storage.
func (b *DevBuffer) Backed() bool { return b.f64 != nil || b.f32 != nil }

// F64 exposes the backing storage of a backed float64 buffer (nil
// otherwise). Intended for test verification, not scheduler logic.
func (b *DevBuffer) F64() []float64 { return b.f64 }

// F32 exposes the backing storage of a backed float32 buffer.
func (b *DevBuffer) F32() []float32 { return b.f32 }

// Malloc allocates a device buffer of elems elements. When backed is true
// the buffer carries real storage (functional mode).
func (rt *Runtime) Malloc(dt kernelmodel.Dtype, elems int64, backed bool) (*DevBuffer, error) {
	if elems < 0 {
		return nil, fmt.Errorf("cudart: negative element count %d", elems)
	}
	mem, err := rt.dev.Malloc(elems * dt.Size())
	if err != nil {
		return nil, err
	}
	b := &DevBuffer{mem: mem, dt: dt, elems: elems}
	if backed {
		if dt == kernelmodel.F64 {
			b.f64 = make([]float64, elems)
		} else {
			b.f32 = make([]float32, elems)
		}
	}
	return b, nil
}

// Free releases a device buffer.
func (rt *Runtime) Free(b *DevBuffer) error {
	if b == nil {
		return errors.New("cudart: free of nil buffer")
	}
	b.f64, b.f32 = nil, nil
	return rt.dev.Free(b.mem)
}

// memcpyBounds validates an elems-sized access at off into b.
func memcpyBounds(b *DevBuffer, off, elems int64, what string) error {
	if b == nil {
		return fmt.Errorf("cudart: %s: nil device buffer", what)
	}
	if off < 0 || elems < 0 || off+elems > b.elems {
		return fmt.Errorf("cudart: %s: range [%d, %d) outside buffer of %d elems",
			what, off, off+elems, b.elems)
	}
	return nil
}

// MemcpyH2DAsync enqueues a 1-D host-to-device copy of elems elements from
// hostF64/hostF32 (per the buffer dtype) into dst at dstOff.
func (s *Stream) MemcpyH2DAsync(dst *DevBuffer, dstOff int64, hostF64 []float64, hostF32 []float32, elems int64) (*Event, error) {
	if err := memcpyBounds(dst, dstOff, elems, "h2d"); err != nil {
		return nil, err
	}
	o := s.rt.allocOp(opH2D)
	o.dir, o.bytes = machine.H2D, elems*dst.dt.Size()
	o.buf = dst
	if needsWindow(dst, hostF64, hostF32) {
		w := s.rt.allocWindow()
		w.f64, w.f32, w.off, w.elems = hostF64, hostF32, dstOff, elems
		o.host = w
	}
	return s.enqueue(o), nil
}

// MemcpyD2HAsync enqueues a 1-D device-to-host copy.
func (s *Stream) MemcpyD2HAsync(hostF64 []float64, hostF32 []float32, src *DevBuffer, srcOff, elems int64) (*Event, error) {
	if err := memcpyBounds(src, srcOff, elems, "d2h"); err != nil {
		return nil, err
	}
	o := s.rt.allocOp(opD2H)
	o.dir, o.bytes = machine.D2H, elems*src.dt.Size()
	o.buf = src
	if needsWindow(src, hostF64, hostF32) {
		w := s.rt.allocWindow()
		w.f64, w.f32, w.off, w.elems = hostF64, hostF32, srcOff, elems
		o.host = w
	}
	return s.enqueue(o), nil
}

// matrixArgs describes one side of a 2-D (sub)matrix copy, in the manner of
// cublasSetMatrixAsync / cublasGetMatrixAsync: rows x cols elements,
// column-major with a leading dimension.
func check2D(rows, cols int, ld int, what string) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("cudart: %s: negative dims %dx%d", what, rows, cols)
	}
	if ld < max(1, rows) {
		return fmt.Errorf("cudart: %s: ld %d < rows %d", what, ld, rows)
	}
	return nil
}

// SetMatrixAsync enqueues a 2-D h2d copy of a rows x cols column-major
// submatrix from host (leading dimension ldh) into dst at element offset
// dstOff with leading dimension ldd. Exactly one of hostF64/hostF32 must
// match the buffer dtype in functional runs.
func (s *Stream) SetMatrixAsync(rows, cols int, hostF64 []float64, hostF32 []float32, ldh int, dst *DevBuffer, dstOff int64, ldd int) (*Event, error) {
	if err := check2D(rows, cols, ldh, "setmatrix host"); err != nil {
		return nil, err
	}
	if err := check2D(rows, cols, ldd, "setmatrix device"); err != nil {
		return nil, err
	}
	need := int64(0)
	if cols > 0 {
		need = int64(cols-1)*int64(ldd) + int64(rows)
	}
	if err := memcpyBounds(dst, dstOff, need, "setmatrix"); err != nil {
		return nil, err
	}
	o := s.rt.allocOp(opSet2D)
	o.dir, o.bytes = machine.H2D, int64(rows)*int64(cols)*dst.dt.Size()
	o.buf = dst
	if needsWindow(dst, hostF64, hostF32) {
		w := s.rt.allocWindow()
		w.f64, w.f32, w.off = hostF64, hostF32, dstOff
		w.rows, w.cols, w.ldh, w.ldd = int32(rows), int32(cols), int32(ldh), int32(ldd)
		o.host = w
	}
	return s.enqueue(o), nil
}

// GetMatrixAsync enqueues a 2-D d2h copy (the cublasGetMatrixAsync analog).
func (s *Stream) GetMatrixAsync(rows, cols int, src *DevBuffer, srcOff int64, lds int, hostF64 []float64, hostF32 []float32, ldh int) (*Event, error) {
	if err := check2D(rows, cols, lds, "getmatrix device"); err != nil {
		return nil, err
	}
	if err := check2D(rows, cols, ldh, "getmatrix host"); err != nil {
		return nil, err
	}
	need := int64(0)
	if cols > 0 {
		need = int64(cols-1)*int64(lds) + int64(rows)
	}
	if err := memcpyBounds(src, srcOff, need, "getmatrix"); err != nil {
		return nil, err
	}
	o := s.rt.allocOp(opGet2D)
	o.dir, o.bytes = machine.D2H, int64(rows)*int64(cols)*src.dt.Size()
	o.buf = src
	if needsWindow(src, hostF64, hostF32) {
		w := s.rt.allocWindow()
		w.f64, w.f32, w.off = hostF64, hostF32, srcOff
		w.rows, w.cols, w.ldh, w.ldd = int32(rows), int32(cols), int32(ldh), int32(lds)
		o.host = w
	}
	return s.enqueue(o), nil
}

// KernelAsync enqueues a generic kernel with an explicit duration and an
// optional functional payload. Comparator libraries use it to model their
// own runtime overheads (e.g. tile-management work) on the compute engine.
func (s *Stream) KernelAsync(name string, duration float64, payload func()) (*Event, error) {
	if duration < 0 {
		return nil, fmt.Errorf("cudart: negative kernel duration %g", duration)
	}
	o := s.rt.allocOp(opKernel)
	o.name, o.duration, o.payload = name, duration, payload
	return s.enqueue(o), nil
}

// GemmAsync enqueues C = alpha*op(A)*op(B) + beta*C on the stream, where
// the operands are column-major submatrices of device buffers. Timing comes
// from the kernel ground-truth model; arithmetic runs on backed buffers.
func (s *Stream) GemmAsync(transA, transB byte, m, n, k int,
	alpha float64, a *DevBuffer, offA int64, lda int,
	b *DevBuffer, offB int64, ldb int,
	beta float64, c *DevBuffer, offC int64, ldc int) (*Event, error) {

	dt := c.dt
	if a.dt != dt || b.dt != dt {
		return nil, errors.New("cudart: gemm operand dtype mismatch")
	}
	dur := s.rt.gemmTime(dt, m, n, k)
	name := "dgemm"
	if dt == kernelmodel.F32 {
		name = "sgemm"
	}
	var payload func()
	if c.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.GemmParallelPolicy(s.rt.payloadPool, s.rt.payloadPolicy, transA, transB, m, n, k, alpha,
					a.f64[offA:], lda, b.f64[offB:], ldb, beta, c.f64[offC:], ldc)
			} else {
				err = blas.GemmParallelPolicy(s.rt.payloadPool, s.rt.payloadPolicy, transA, transB, m, n, k, float32(alpha),
					a.f32[offA:], lda, b.f32[offB:], ldb, float32(beta), c.f32[offC:], ldc)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: gemm payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(name, dur, payload)
	return s.enqueue(o), nil
}

// allocKernelOp builds a kernel op (shared by the BLAS launch wrappers).
func (s *Stream) allocKernelOp(name string, dur float64, payload func()) *op {
	o := s.rt.allocOp(opKernel)
	o.name, o.duration, o.payload = name, dur, payload
	return o
}

// AxpyAsync enqueues y += alpha*x over device vectors.
func (s *Stream) AxpyAsync(n int, alpha float64, x *DevBuffer, offX int64, y *DevBuffer, offY int64) (*Event, error) {
	if x.dt != y.dt {
		return nil, errors.New("cudart: axpy operand dtype mismatch")
	}
	if err := memcpyBounds(x, offX, int64(n), "axpy x"); err != nil {
		return nil, err
	}
	if err := memcpyBounds(y, offY, int64(n), "axpy y"); err != nil {
		return nil, err
	}
	dt := y.dt
	dur := s.rt.axpyTime(dt, n)
	name := "daxpy"
	if dt == kernelmodel.F32 {
		name = "saxpy"
	}
	var payload func()
	if y.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Daxpy(n, alpha, x.f64[offX:], 1, y.f64[offY:], 1)
			} else {
				err = blas.Saxpy(n, float32(alpha), x.f32[offX:], 1, y.f32[offY:], 1)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: axpy payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(name, dur, payload)
	return s.enqueue(o), nil
}

// GemvAsync enqueues y = alpha*op(A)*x + beta*y over device operands.
func (s *Stream) GemvAsync(trans byte, m, n int, alpha float64,
	a *DevBuffer, offA int64, lda int, x *DevBuffer, offX int64,
	beta float64, y *DevBuffer, offY int64) (*Event, error) {
	if a.dt != x.dt || x.dt != y.dt {
		return nil, errors.New("cudart: gemv operand dtype mismatch")
	}
	dt := y.dt
	dur := s.rt.gemvTime(dt, m, n)
	var payload func()
	if y.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Dgemv(trans, m, n, alpha, a.f64[offA:], lda, x.f64[offX:], 1, beta, y.f64[offY:], 1)
			} else {
				err = blas.Gemv(trans, m, n, float32(alpha), a.f32[offA:], lda, x.f32[offX:], 1, float32(beta), y.f32[offY:], 1)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: gemv payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp("gemv", dur, payload)
	return s.enqueue(o), nil
}
