// Package parallel provides the bounded worker pool behind the campaign
// execution engine: fan-out of independent simulation work items across
// cores with in-order result placement, first-error capture with
// cancellation of not-yet-started work, and utilization accounting for the
// run summaries of the cmd/ binaries.
//
// Determinism contract: callers must make each work item's result a pure
// function of the item itself (the evaluation campaigns derive every noise
// seed from the work item's cell key, never from execution order), so Map
// returns identical results at any worker count — including the inline
// serial path selected by a nil pool.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool bounds the concurrency of Map and ForEach calls and accumulates
// utilization statistics across them. The zero Pool is not useful; use
// NewPool. A nil *Pool is valid everywhere and selects inline serial
// execution on the calling goroutine.
type Pool struct {
	workers int
	clock   Clock
	jobs    atomic.Int64
	busyNS  atomic.Int64
}

// NewPool returns a pool bounded to n concurrent workers; n <= 0 selects
// runtime.GOMAXPROCS(0). Utilization accounting samples the wall clock;
// use NewPoolClock to inject a synthetic clock.
func NewPool(n int) *Pool {
	return NewPoolClock(n, wallClock)
}

// NewPoolClock is NewPool with an injected time source for the busy-time
// accounting. The clock is sampled concurrently from every worker, so it
// must be safe for concurrent use.
func NewPoolClock(n int, clock Clock) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if clock == nil {
		clock = wallClock
	}
	return &Pool{workers: n, clock: clock}
}

// Workers returns the pool's worker bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Stats reports the work executed through a pool so far.
type Stats struct {
	// Jobs is the number of completed work items.
	Jobs int64
	// Busy is the cumulative wall-clock time workers spent inside work
	// items, summed across workers (so Busy may exceed elapsed time).
	Busy time.Duration
}

// Stats returns the accumulated counters (zero for a nil pool).
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{Jobs: p.jobs.Load(), Busy: time.Duration(p.busyNS.Load())}
}

// Utilization returns the fraction of worker capacity kept busy over an
// elapsed wall-clock window (1 = every worker busy the whole time).
func (p *Pool) Utilization(elapsed time.Duration) float64 {
	if p == nil || elapsed <= 0 {
		return 0
	}
	return float64(p.busyNS.Load()) / (float64(elapsed.Nanoseconds()) * float64(p.workers))
}

// Map applies fn to every item and returns the results in item order. A
// nil pool runs inline on the calling goroutine; otherwise up to
// p.Workers() goroutines pull items from a shared counter. The first error
// cancels the fan-out — no new items start, in-flight items finish — and
// is returned with the partial results discarded.
func Map[T, R any](p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	workers := p.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, item := range items {
			var start time.Time
			if p != nil {
				start = p.clock()
			}
			r, err := fn(i, item)
			if p != nil {
				p.busyNS.Add(int64(p.clock().Sub(start)))
				p.jobs.Add(1)
			}
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(items) || stop.Load() {
					return
				}
				start := p.clock()
				r, err := fn(i, items[i])
				p.busyNS.Add(int64(p.clock().Sub(start)))
				p.jobs.Add(1)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Fanout runs f(0) … f(n-1) to completion, concurrently through up to
// p.Workers() goroutines when the pool allows it and inline otherwise. It
// is the infallible, index-only sibling of ForEach, shaped for the
// partitioned DES engine's drain hook (sim.SetDrain): the per-partition
// staging jobs are independent, return nothing, and must all finish before
// the drain proceeds. A nil pool (or a single-worker one) runs inline on
// the calling goroutine, which is also the deterministic reference order.
func Fanout(p *Pool, n int, f func(int)) {
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForEach is Map without result collection: it applies fn to every item
// and returns the first error.
func ForEach[T any](p *Pool, items []T, fn func(i int, item T) error) error {
	_, err := Map(p, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
