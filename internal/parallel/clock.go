package parallel

import "time"

// Clock samples the current time for the pool's utilization accounting.
// Injecting it (NewPoolClock) makes the accounting testable without real
// time; everything else in the package is wall-clock free, which keeps the
// determinism allowlist down to this one file.
type Clock func() time.Time

// wallClock is the production clock. This file is the only sanctioned
// wall-clock reference outside the cmd/ render layers (see cocolint.json).
func wallClock() time.Time { return time.Now() }
