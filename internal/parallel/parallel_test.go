package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, p := range []*Pool{nil, NewPool(1), NewPool(4), NewPool(64)} {
		got, err := Map(p, items, func(i, item int) (int, error) { return item * item, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", p.Workers(), i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(NewPool(4), nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 1000)
	var ran atomic.Int64
	_, err := Map(NewPool(4), items, func(i, _ int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("error should cancel remaining work, %d items ran", n)
	}
}

func TestMapSerialErrorStopsImmediately(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	_, err := Map(nil, make([]int, 10), func(i, _ int) (int, error) {
		ran++
		if i == 2 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) || ran != 3 {
		t.Fatalf("serial error path: ran=%d err=%v", ran, err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(NewPool(workers), make([]int, 50), func(_, _ int) (int, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, bound is %d", p, workers)
	}
}

func TestPoolStatsAccumulate(t *testing.T) {
	p := NewPool(2)
	if err := ForEach(p, make([]int, 8), func(_, _ int) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Jobs != 8 {
		t.Errorf("jobs = %d, want 8", st.Jobs)
	}
	if st.Busy < 8*time.Millisecond {
		t.Errorf("busy = %v, want >= 8ms", st.Busy)
	}
	if u := p.Utilization(st.Busy); u <= 0 {
		t.Errorf("utilization = %g, want > 0", u)
	}
}

func TestNilPoolIsServiceable(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Error("nil pool should report one worker")
	}
	if st := p.Stats(); st.Jobs != 0 || st.Busy != 0 {
		t.Error("nil pool stats should be zero")
	}
	if p.Utilization(time.Second) != 0 {
		t.Error("nil pool utilization should be zero")
	}
	if err := ForEach(p, []int{1, 2, 3}, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// fakeClock is a deterministic, concurrency-safe Clock: every sample
// advances virtual time by step, so each work item's measured busy span is
// exactly step (one sample at start, one at end).
type fakeClock struct {
	ticks atomic.Int64
	step  time.Duration
}

func (c *fakeClock) now() time.Time {
	return time.Unix(0, c.ticks.Add(1)*int64(c.step))
}

func TestInjectedClockMakesStatsExact(t *testing.T) {
	const items = 16
	for _, workers := range []int{1, 4} {
		clk := &fakeClock{step: time.Millisecond}
		p := NewPoolClock(workers, clk.now)
		if err := ForEach(p, make([]int, items), func(_, _ int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.Jobs != items {
			t.Errorf("workers=%d: jobs = %d, want %d", workers, st.Jobs, items)
		}
		// Each item samples the clock twice, so busy is exactly one step
		// per item regardless of real scheduling.
		if want := items * time.Millisecond; st.Busy != want {
			t.Errorf("workers=%d: busy = %v, want exactly %v", workers, st.Busy, want)
		}
	}
}

func TestInjectedClockUtilization(t *testing.T) {
	clk := &fakeClock{step: time.Millisecond}
	p := NewPoolClock(2, clk.now)
	if err := ForEach(p, make([]int, 10), func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// 10 items x 1ms busy over a 5ms window on 2 workers = fully utilized.
	if u := p.Utilization(5 * time.Millisecond); u != 1 {
		t.Errorf("utilization = %g, want exactly 1", u)
	}
}

func TestNewPoolClockNilFallsBackToWallClock(t *testing.T) {
	p := NewPoolClock(2, nil)
	if err := ForEach(p, make([]int, 4), func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Jobs != 4 {
		t.Errorf("jobs = %d, want 4", st.Jobs)
	}
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
	if NewPool(-3).Workers() < 1 {
		t.Error("negative worker count must be normalized")
	}
}
