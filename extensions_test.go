package cocopelia

import (
	"math"
	"math/rand"
	"testing"
)

func TestDgemmTransFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	m, n, k := 80, 64, 72
	rng := rand.New(rand.NewSource(51))
	// A stored K x M (transposed), B stored N x K (transposed).
	a := make([]float64, k*m)
	b := make([]float64, n*k)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[l+i*k] * b[j+l*n]
			}
			ref[i+j*m] = s
		}
	}
	if _, err := lib.DgemmTrans('T', 'T', m, n, k, 1,
		HostMatrix(k, m, a), HostMatrix(n, k, b), 0, HostMatrix(m, n, c)); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(c[i]-ref[i]) > 1e-10 {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], ref[i])
		}
	}
}

func TestDsyrkFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	n, k := 64, 48
	rng := rand.New(rand.NewSource(52))
	a := make([]float64, n*k)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	c := make([]float64, n*n)
	res, err := lib.Dsyrk('N', n, k, 1, HostMatrix(n, k, a), 0, HostMatrix(n, n, c))
	if err != nil {
		t.Fatal(err)
	}
	// C must be symmetric and match A*A^T.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(c[i+j*n]-c[j+i*n]) > 1e-10 {
				t.Fatalf("syrk result not symmetric at (%d,%d)", i, j)
			}
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i+l*n] * a[j+l*n]
			}
			if math.Abs(c[i+j*n]-s) > 1e-10 {
				t.Fatalf("c[%d,%d] = %g, want %g", i, j, c[i+j*n], s)
			}
		}
	}
	if res.Subkernels <= 0 {
		t.Error("no subkernels")
	}
}

func TestDsyrkBadFlag(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	A := HostMatrix(64, 64, nil)
	if _, err := lib.Dsyrk('Q', 64, 64, 1, A, 1, A); err == nil {
		t.Error("bad syrk flag should error")
	}
}

func TestSchedulerOutOfMemoryPropagates(t *testing.T) {
	// Failure injection: a device too small for even one tile must
	// surface a clean error, not a panic or deadlock.
	tiny := TestbedII()
	tiny.GPU.MemBytes = 1 << 20 // 1 MiB
	lib, err := Open(tiny, Options{Deployment: sharedDeployment(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	A := HostMatrix(4096, 4096, nil)
	if _, err := lib.DgemmTile(4096, 4096, 4096, 1, A, A, 1, A, 1024); err == nil {
		t.Error("OOM should propagate as an error")
	}
}
