package cocopelia

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Deployment campaigns take a moment; share one library per configuration.
var (
	sharedOnce sync.Once
	sharedDep  *Deployment
)

func sharedDeployment(t *testing.T) *Deployment {
	t.Helper()
	sharedOnce.Do(func() {
		lib, err := Open(TestbedII(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sharedDep = lib.Deployment()
	})
	return sharedDep
}

func openBacked(t *testing.T) *Library {
	t.Helper()
	lib, err := Open(TestbedII(), Options{Deployment: sharedDeployment(t), Backed: true})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func openTiming(t *testing.T) *Library {
	t.Helper()
	lib, err := Open(TestbedII(), Options{Deployment: sharedDeployment(t)})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Error("nil testbed should error")
	}
	bad := TestbedI()
	bad.GPU.PeakFlops64 = -1
	if _, err := Open(bad, Options{}); err == nil {
		t.Error("invalid testbed should error")
	}
}

func TestDgemmAutoTileFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	m, n, k := 96, 80, 64
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Reference via naive accumulation.
	ref := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i+l*m] * b[l+j*k]
			}
			ref[i+j*m] = s
		}
	}
	res, err := lib.Dgemm(m, n, k, 1.0, HostMatrix(m, k, a), HostMatrix(k, n, b), 0.0, HostMatrix(m, n, c))
	if err != nil {
		t.Fatal(err)
	}
	if res.T <= 0 || res.Seconds <= 0 {
		t.Errorf("implausible result %+v", res)
	}
	for i := range ref {
		if math.Abs(c[i]-ref[i]) > 1e-10 {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], ref[i])
		}
	}
}

func TestSgemmFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	n := 64
	a := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = 2 // 2*I
	}
	res, err := lib.Sgemm(n, n, n, 1.0, HostMatrixF32(n, n, a), HostMatrixF32(n, n, a), 0.0, HostMatrixF32(n, n, c))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c[i+i*n] != 4 {
			t.Fatalf("(2I)^2 diagonal wrong: %g", c[i+i*n])
		}
	}
	if res.Subkernels <= 0 {
		t.Error("no subkernels recorded")
	}
}

func TestDaxpyAutoTileFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	n := 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
		y[i] = float64(i % 7)
	}
	res, err := lib.Daxpy(n, 3, HostVector(n, x), HostVector(n, y))
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != float64(i%7)+3 {
			t.Fatalf("y[%d] = %g", i, y[i])
		}
	}
	if res.T <= 0 {
		t.Error("no tile selected")
	}
}

func TestPartialOffloadDeviceResident(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	n := 64
	host := make([]float64, n*n)
	for i := 0; i < n; i++ {
		host[i+i*n] = 1 // identity
	}
	devA, err := lib.DeviceMatrix("dgemm", n, n, host)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n*n)
	for i := range b {
		b[i] = float64(i)
	}
	c := make([]float64, n*n)
	res, err := lib.Dgemm(n, n, n, 1, devA, HostMatrix(n, n, b), 0, HostMatrix(n, n, c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if c[i] != b[i] {
			t.Fatalf("I*B mismatch at %d", i)
		}
	}
	// A resides on the device and beta=0 skips the C fetch: only B
	// crosses h2d.
	if want := int64(n*n) * 8; res.BytesH2D != want {
		t.Errorf("h2d bytes = %d, want %d", res.BytesH2D, want)
	}
}

func TestDeviceRoundTrip(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	n := 32
	src := make([]float64, n*n)
	for i := range src {
		src[i] = float64(i)
	}
	dev, err := lib.DeviceMatrix("dgemm", n, n, src)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, n*n)
	if err := lib.ReadDeviceMatrix(dev, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if err := lib.ReadDeviceMatrix(HostMatrix(2, 2, nil), dst); err == nil {
		t.Error("reading a host matrix should error")
	}
}

func TestSelectionCachedAndPlausible(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	a := HostMatrix(8192, 8192, nil)
	s1, err := lib.SelectGemmTile("dgemm", 8192, 8192, 8192, a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lib.SelectGemmTile("dgemm", 8192, 8192, 8192, a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("selection not cached/deterministic")
	}
	if s1.T < 256 || float64(s1.T) > 8192/1.5 {
		t.Errorf("selected tile %d outside feasible range", s1.T)
	}
	sv, err := lib.SelectAxpyTile(64<<20, HostVector(64<<20, nil), HostVector(64<<20, nil))
	if err != nil {
		t.Fatal(err)
	}
	if sv.T <= 0 || sv.T > 64<<20 {
		t.Errorf("axpy tile %d implausible", sv.T)
	}
}

func TestPredictModels(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	a := HostMatrix(8192, 8192, nil)
	var prev float64
	for i, kind := range []ModelKind{ModelBaseline, ModelDataLoc} {
		v, err := lib.Predict(kind, "dgemm", 8192, 8192, 8192, 2048, a, a, a)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Errorf("%s prediction non-positive", kind)
		}
		if i == 1 && v > prev {
			t.Error("DataLoc should not exceed Baseline")
		}
		prev = v
	}
	if _, err := lib.Predict(ModelBTS, "dgemm", 8192, 8192, 8192, 2000, a, a, a); err == nil {
		t.Error("off-grid tile should error")
	}
}

func TestExplicitTileMatchesScheduler(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	a := HostMatrix(4096, 4096, nil)
	res, err := lib.DgemmTile(4096, 4096, 4096, 1, a, a, 1, a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 1024 {
		t.Errorf("explicit tile not honoured: %d", res.T)
	}
	if _, err := lib.DgemmTile(64, 64, 64, 1, a, a, 1, a, 0); err == nil {
		t.Error("T=0 should error on the explicit-tile API")
	}
	if _, err := lib.SgemmTile(64, 64, 64, 1, a, a, 1, a, -1); err == nil {
		t.Error("negative T should error")
	}
	if _, err := lib.DaxpyTile(64, 1, HostVector(64, nil), HostVector(64, nil), 0); err == nil {
		t.Error("daxpy T=0 should error")
	}
}

func TestTracedSession(t *testing.T) {
	lib, err := Open(TestbedII(), Options{Deployment: sharedDeployment(t), Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	a := HostMatrix(2048, 2048, nil)
	if _, err := lib.DgemmTile(2048, 2048, 2048, 1, a, a, 1, a, 512); err != nil {
		t.Fatal(err)
	}
	tr := lib.Trace()
	if tr == nil || len(tr.Intervals) == 0 {
		t.Fatal("trace empty")
	}
	if tr.OverlapFraction() <= 0 {
		t.Error("no overlap recorded")
	}
	if lib.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestUntracedSessionHasNoTrace(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	if lib.Trace() != nil {
		t.Error("untraced session should have nil trace")
	}
}

func TestIterativeCallsReuseBuffers(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	a := HostMatrix(2048, 2048, nil)
	if _, err := lib.DgemmTile(2048, 2048, 2048, 1, a, a, 1, a, 512); err != nil {
		t.Fatal(err)
	}
	t1, err := lib.DgemmTile(2048, 2048, 2048, 1, a, a, 1, a, 512)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Seconds <= 0 {
		t.Error("second call should still be measured")
	}
}

func TestSelectionModelOption(t *testing.T) {
	// A session opened with a different selection model must use it for
	// level-3 tile selection.
	btsLib, err := Open(TestbedII(), Options{
		Deployment:     sharedDeployment(t),
		SelectionModel: ModelBTS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer btsLib.Close()
	drLib := openTiming(t)
	defer drLib.Close()

	A := HostMatrix(8192, 8192, nil)
	selBTS, err := btsLib.SelectGemmTile("dgemm", 8192, 8192, 8192, A, A, A)
	if err != nil {
		t.Fatal(err)
	}
	selDR, err := drLib.SelectGemmTile("dgemm", 8192, 8192, 8192, A, A, A)
	if err != nil {
		t.Fatal(err)
	}
	// The BTS model assumes per-sub-kernel transfers, so its predicted
	// time for the same tile must be higher than DR's.
	if selBTS.Predicted <= selDR.Predicted {
		t.Errorf("BTS selection predicted %g should exceed DR %g",
			selBTS.Predicted, selDR.Predicted)
	}
}
