package cocopelia_test

import (
	"fmt"
	"log"

	"cocopelia"
)

// ExampleOpen shows the minimal session: deploy on a simulated testbed and
// run an auto-tuned functional dgemm.
func ExampleOpen() {
	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	n := 64
	a := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = 3 // A = 3*I
	}
	_, err = lib.Dgemm(n, n, n, 1.0,
		cocopelia.HostMatrix(n, n, a),
		cocopelia.HostMatrix(n, n, a),
		0.0, cocopelia.HostMatrix(n, n, c))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c[0][0] = %.0f\n", c[0])
	// Output: c[0][0] = 9
}

// ExampleLibrary_SelectGemmTile shows runtime tile selection: the DR model
// picks the tiling size for a paper-scale problem.
func ExampleLibrary_SelectGemmTile() {
	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	A := cocopelia.HostMatrix(8192, 8192, nil) // timing-only descriptor
	sel, err := lib.SelectGemmTile("dgemm", 8192, 8192, 8192, A, A, A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sel.T >= 256 && float64(sel.T) <= 8192/1.5)
	// Output: true
}

// ExampleLibrary_Daxpy shows the level-1 path with automatic chunking.
func ExampleLibrary_Daxpy() {
	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	n := 1000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 2
		y[i] = 1
	}
	if _, err := lib.Daxpy(n, 10, cocopelia.HostVector(n, x), cocopelia.HostVector(n, y)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y[999] = %.0f\n", y[999])
	// Output: y[999] = 21
}
