// Package cocopelia is a Go reproduction of CoCoPeLia — the
// communication-computation overlap prediction framework for efficient
// linear algebra on GPUs (Anastasiadis et al., ISPASS 2021) — built on a
// discrete-event GPU/PCIe simulator so it runs anywhere, no CUDA required.
//
// The library mirrors the paper's end-to-end flow:
//
//  1. Deploy: run the offline micro-benchmarks on a (simulated) testbed to
//     fit the transfer sub-models and kernel lookup tables (Section IV-A).
//  2. Predict: instantiate the 3-way-concurrency models (Section III) and
//     select the tiling size minimizing predicted offload time.
//  3. Execute: run the routine through the reuse-aware tile scheduler with
//     per-operation streams (Section IV-C), overlapping h2d transfers,
//     kernels and d2h transfers on the simulated device.
//
// A minimal session:
//
//	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{})
//	...
//	res, err := lib.Dgemm(m, n, k, 1.0,
//	    cocopelia.HostMatrix(m, k, a),
//	    cocopelia.HostMatrix(k, n, b),
//	    1.0, cocopelia.HostMatrix(m, n, c))
//	fmt.Println(res.T, res.Seconds)
//
// Everything the paper evaluates is reproducible through the cmd/cocoeval
// tool and the repository-level benchmarks; see EXPERIMENTS.md.
package cocopelia

import (
	"errors"
	"fmt"
	"math"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/plan"
	"cocopelia/internal/predictor"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/trace"
)

// Re-exported descriptor and result types.
type (
	// Matrix describes a column-major matrix operand and where it lives.
	Matrix = operand.Matrix
	// Vector describes a vector operand for level-1 routines.
	Vector = operand.Vector
	// Result reports one executed routine invocation.
	Result = operand.Result
	// Testbed is a simulated machine description.
	Testbed = machine.Testbed
	// Deployment is the fitted machine database of the deployment phase.
	Deployment = microbench.Deployment
	// Selection is a tile-size choice with its predicted offload time.
	Selection = model.Selection
	// ModelKind names one of the prediction models (CSO, Baseline,
	// DataLoc, BTS, DR).
	ModelKind = model.Kind
	// Trace accumulates engine timelines for inspection.
	Trace = trace.Trace
)

// The prediction models, re-exported in increasing fidelity order.
const (
	ModelCSO      = model.CSO
	ModelBaseline = model.Baseline
	ModelDataLoc  = model.DataLoc
	ModelBTS      = model.BTS
	ModelDR       = model.DR
)

// Operand locations.
const (
	OnHost   = model.OnHost
	OnDevice = model.OnDevice
)

// TestbedI returns the simulated equivalent of the paper's Testbed I
// (Tesla K40, PCIe Gen2 x8).
func TestbedI() *Testbed { return machine.TestbedI() }

// TestbedII returns the simulated equivalent of the paper's Testbed II
// (Tesla V100, PCIe Gen3 x16).
func TestbedII() *Testbed { return machine.TestbedII() }

// HostMatrix builds a host-resident float64 matrix descriptor with packed
// columns. Pass nil data for timing-only runs.
func HostMatrix(rows, cols int, data []float64) *Matrix {
	return operand.HostMatrix(rows, cols, data)
}

// HostMatrixF32 builds a host-resident float32 matrix descriptor.
func HostMatrixF32(rows, cols int, data []float32) *Matrix {
	return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF32: data, HostLd: rows}
}

// HostVector builds a host-resident float64 vector descriptor.
func HostVector(n int, data []float64) *Vector { return operand.HostVector(n, data) }

// Options configures a Library session.
type Options struct {
	// Deployment supplies a pre-computed deployment database (e.g. loaded
	// from disk); when nil, Open runs the micro-benchmark campaign.
	Deployment *Deployment
	// Backed selects functional execution: operands carry real storage
	// and kernels perform real arithmetic. Timing-only sessions (the
	// default) move no data.
	Backed bool
	// Seed drives the simulated machine's measurement noise. Zero selects
	// a fixed default.
	Seed int64
	// SelectionModel is the prediction model used for automatic tile
	// selection; it defaults to the DR model for level-3 routines. Level-1
	// routines always use the BTS model, as in the paper.
	SelectionModel ModelKind
	// Traced attaches an engine-timeline trace to the session.
	Traced bool
}

// Library is one CoCoPeLia session on a simulated testbed. It owns the
// device, the deployment database and the reusable scheduler state
// (streams and tile-buffer pools). A Library is not safe for concurrent
// use.
type Library struct {
	tb     *Testbed
	dep    *Deployment
	pred   *predictor.Predictor
	rt     *cudart.Runtime
	ctx    *sched.Context
	selL3  ModelKind
	traced *Trace
}

// Open deploys (or adopts) the machine models for the testbed and returns
// a ready session.
func Open(tb *Testbed, opts Options) (*Library, error) {
	if tb == nil {
		return nil, errors.New("cocopelia: nil testbed")
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	dep := opts.Deployment
	if dep == nil {
		dep = microbench.Run(tb, microbench.DefaultConfig())
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 42
	}
	eng := sim.New()
	dev := device.New(eng, tb, seed, false)
	var tr *Trace
	if opts.Traced {
		tr = trace.Attach(dev)
	}
	rt := cudart.New(dev)
	selL3 := opts.SelectionModel
	if selL3 == "" {
		selL3 = model.DR
	}
	return &Library{
		tb:     tb,
		dep:    dep,
		pred:   predictor.New(dep),
		rt:     rt,
		ctx:    sched.NewContext(rt, opts.Backed),
		selL3:  selL3,
		traced: tr,
	}, nil
}

// Testbed returns the session's machine description.
func (l *Library) Testbed() *Testbed { return l.tb }

// Deployment returns the fitted machine database.
func (l *Library) Deployment() *Deployment { return l.dep }

// Trace returns the engine timeline (nil unless Options.Traced was set).
func (l *Library) Trace() *Trace { return l.traced }

// Now returns the session's virtual clock in seconds.
func (l *Library) Now() float64 { return l.rt.Now() }

// locOf maps operand residency to the model's location flag.
func locOfMatrix(m *Matrix) model.Loc {
	if m == nil {
		return model.OnHost
	}
	return m.Loc
}

func locOfVector(v *Vector) model.Loc {
	if v == nil {
		return model.OnHost
	}
	return v.Loc
}

// SelectGemmTile predicts the best tiling size for a gemm invocation with
// the session's selection model (cached per parameter signature, as in the
// paper's model-reuse scheme).
func (l *Library) SelectGemmTile(routine string, m, n, k int, a, b, c *Matrix) (Selection, error) {
	dt := kernelmodel.F64
	if routine == "sgemm" {
		dt = kernelmodel.F32
	}
	prm := model.GemmParams(routine, dt.Size(), int64(m), int64(n), int64(k),
		locOfMatrix(a), locOfMatrix(b), locOfMatrix(c))
	return l.pred.Select(l.selL3, &prm)
}

// SelectAxpyTile predicts the best chunk length for a daxpy invocation
// using the BTS model.
func (l *Library) SelectAxpyTile(n int, x, y *Vector) (Selection, error) {
	prm := model.AxpyParams("daxpy", 8, int64(n), locOfVector(x), locOfVector(y))
	return l.pred.Select(model.BTS, &prm)
}

// Predict evaluates one prediction model at an explicit tiling size.
func (l *Library) Predict(kind ModelKind, routine string, m, n, k, T int, a, b, c *Matrix) (float64, error) {
	dt := kernelmodel.F64
	if routine == "sgemm" {
		dt = kernelmodel.F32
	}
	prm := model.GemmParams(routine, dt.Size(), int64(m), int64(n), int64(k),
		locOfMatrix(a), locOfMatrix(b), locOfMatrix(c))
	full := kernelmodel.GemmTime(&l.tb.GPU, dt, m, n, k)
	return l.pred.Predict(kind, &prm, T, full)
}

// gemm runs the scheduler with an explicit or auto-selected tile.
func (l *Library) gemm(routine string, dt kernelmodel.Dtype, m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix, T int) (Result, error) {
	if T == 0 {
		sel, err := l.SelectGemmTile(routine, m, n, k, a, b, c)
		switch {
		case err == nil:
			T = sel.T
		case errors.Is(err, model.ErrNoCandidates):
			// Problems smaller than the benchmarked tile grid cannot be
			// profitably split: run them as a single tile.
			T = min(m, min(n, k))
		default:
			return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
		}
	}
	return l.ctx.Gemm(sched.GemmOpts{
		Dtype: dt, M: m, N: n, K: k,
		Alpha: alpha, Beta: beta, A: a, B: b, C: c, T: T,
	})
}

// Dgemm computes C = alpha*A*B + beta*C in double precision with
// automatic tiling-size selection.
func (l *Library) Dgemm(m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix) (Result, error) {
	return l.gemm("dgemm", kernelmodel.F64, m, n, k, alpha, a, b, beta, c, 0)
}

// DgemmTile is Dgemm with an explicit tiling size (the cuBLASXt-style
// interface the paper's library also provides for validation).
func (l *Library) DgemmTile(m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.gemm("dgemm", kernelmodel.F64, m, n, k, alpha, a, b, beta, c, T)
}

// Sgemm computes C = alpha*A*B + beta*C in single precision with
// automatic tiling-size selection.
func (l *Library) Sgemm(m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix) (Result, error) {
	return l.gemm("sgemm", kernelmodel.F32, m, n, k, alpha, a, b, beta, c, 0)
}

// SgemmTile is Sgemm with an explicit tiling size.
func (l *Library) SgemmTile(m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.gemm("sgemm", kernelmodel.F32, m, n, k, alpha, a, b, beta, c, T)
}

// DgemmTrans computes C = alpha*op(A)*op(B) + beta*C with explicit BLAS
// transpose flags ('N' or 'T') and automatic tiling-size selection. A is
// stored M x K when transA is 'N' (K x M when 'T'); B is stored K x N when
// transB is 'N' (N x K when 'T').
func (l *Library) DgemmTrans(transA, transB byte, m, n, k int, alpha float64, a, b *Matrix, beta float64, c *Matrix) (Result, error) {
	T := 0
	sel, err := l.SelectGemmTile("dgemm", m, n, k, a, b, c)
	switch {
	case err == nil:
		T = sel.T
	case errors.Is(err, model.ErrNoCandidates):
		T = min(m, min(n, k))
	default:
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.ctx.Gemm(sched.GemmOpts{
		Dtype: kernelmodel.F64, TransA: transA, TransB: transB,
		M: m, N: n, K: k, Alpha: alpha, Beta: beta, A: a, B: b, C: c, T: T,
	})
}

// Dsyrk computes C = alpha*A*A^T + beta*C (trans 'N', A stored N x K) or
// C = alpha*A^T*A + beta*C (trans 'T', A stored K x N) through the tile
// scheduler's routine-wrapper path, with automatic tiling-size selection.
func (l *Library) Dsyrk(trans byte, n, k int, alpha float64, a *Matrix, beta float64, c *Matrix) (Result, error) {
	T := 0
	sel, err := l.SelectGemmTile("dgemm", n, n, k, a, a, c)
	switch {
	case err == nil:
		T = sel.T
	case errors.Is(err, model.ErrNoCandidates):
		T = min(n, k)
	default:
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.ctx.Syrk(sched.SyrkOpts{
		Dtype: kernelmodel.F64, Trans: trans, N: n, K: k,
		Alpha: alpha, Beta: beta, A: a, C: c, T: T,
	})
}

// SelectGemvTile predicts the best tiling size for a dgemv invocation
// using the BTS model (level-2 BLAS per the paper's Section III-C).
func (l *Library) SelectGemvTile(m, n int, a *Matrix, x, y *Vector) (Selection, error) {
	prm := model.GemvParams("dgemv", 8, int64(m), int64(n),
		locOfMatrix(a), locOfVector(x), locOfVector(y))
	return l.pred.Select(model.BTS, &prm)
}

// Dgemv computes y = alpha*A*x + beta*y in double precision with automatic
// tiling-size selection.
func (l *Library) Dgemv(m, n int, alpha float64, a *Matrix, x *Vector, beta float64, y *Vector) (Result, error) {
	T := 0
	sel, err := l.SelectGemvTile(m, n, a, x, y)
	switch {
	case err == nil:
		T = sel.T
	case errors.Is(err, model.ErrNoCandidates):
		T = min(m, n)
	default:
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.ctx.Gemv(sched.GemvOpts{M: m, N: n, Alpha: alpha, Beta: beta, A: a, X: x, Y: y, T: T})
}

// DgemvTile is Dgemv with an explicit tiling size.
func (l *Library) DgemvTile(m, n int, alpha float64, a *Matrix, x *Vector, beta float64, y *Vector, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.ctx.Gemv(sched.GemvOpts{M: m, N: n, Alpha: alpha, Beta: beta, A: a, X: x, Y: y, T: T})
}

// Daxpy computes y += alpha*x with automatic chunk selection.
func (l *Library) Daxpy(n int, alpha float64, x, y *Vector) (Result, error) {
	T := n
	sel, err := l.SelectAxpyTile(n, x, y)
	switch {
	case err == nil:
		T = sel.T
	case errors.Is(err, model.ErrNoCandidates):
		// Shorter than the benchmarked grid: run as one chunk.
	default:
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.ctx.Axpy(sched.AxpyOpts{N: n, Alpha: alpha, X: x, Y: y, T: T})
}

// DaxpyTile is Daxpy with an explicit chunk length.
func (l *Library) DaxpyTile(n int, alpha float64, x, y *Vector, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.ctx.Axpy(sched.AxpyOpts{N: n, Alpha: alpha, X: x, Y: y, T: T})
}

// The tiled factorizations below run on the task-graph plan IR: one plan
// whose kernel ops span several BLAS kinds (potrf/getrf/trsm/syrk/gemm
// tiles) with explicit cross-kernel dependency edges, so a factored tile
// forwards directly from the kernel that produced it to the kernels that
// consume it — no intermediate write-back.

// factorTileGrid is the candidate sweep searched by the factorization
// entry points. The factorization kernels are modeled analytically rather
// than on the deployment's benchmarked lookup grid, so the candidates are
// a fixed sweep clipped to the problem size.
var factorTileGrid = []int{256, 512, 768, 1024, 1536, 2048}

// predictPlanOverlap evaluates the Werkhoven-style full-overlap lower
// bound for a task-graph plan: the simulated run can approach but never
// beat max(sum of kernel times, h2d link time, d2h link time), with each
// transfer op paying the link's setup latency once.
func (l *Library) predictPlanOverlap(p *plan.Plan) float64 {
	nIn, nOut := p.TransferOps()
	v := p.Volumes()
	tIn := float64(nIn)*l.tb.H2D.LatencyS + float64(v.BytesH2D)/l.tb.H2D.BandwidthBps
	tOut := float64(nOut)*l.tb.D2H.LatencyS + float64(v.BytesD2H)/l.tb.D2H.BandwidthBps
	return math.Max(p.KernelSeconds(&l.tb.GPU), math.Max(tIn, tOut))
}

// factorPlan builds the task-graph plan for one factorization invocation.
// b is the right-hand side of "dtrsm" and nil otherwise.
func (l *Library) factorPlan(routine string, m, n, T int, diag byte, alpha float64, a, b *Matrix) (*plan.Plan, error) {
	switch routine {
	case "dpotrf":
		return l.ctx.PlanCholesky(sched.CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: a, T: T})
	case "dgetrf":
		return l.ctx.PlanLU(sched.LUOpts{Dtype: kernelmodel.F64, N: n, A: a, T: T})
	case "dtrsm":
		return l.ctx.PlanTrsm(sched.TrsmOpts{
			Dtype: kernelmodel.F64, Diag: diag, M: m, N: n,
			Alpha: alpha, A: a, B: b, T: T,
		})
	}
	return nil, fmt.Errorf("cocopelia: unknown factorization routine %q", routine)
}

// SelectFactorTile picks the tiling size minimizing the overlap bound for
// a factorization routine ("dpotrf", "dgetrf" or "dtrsm" — for dpotrf and
// dgetrf pass m == n). Problems smaller than the candidate grid run as a
// single tile; Selection.Predicted is the bound at the chosen tile either
// way.
func (l *Library) SelectFactorTile(routine string, m, n int, a, b *Matrix) (Selection, error) {
	minDim := min(m, n)
	if routine != "dtrsm" {
		minDim = n
	}
	best := Selection{Predicted: math.Inf(1)}
	for _, T := range factorTileGrid {
		if T > minDim {
			continue
		}
		p, err := l.factorPlan(routine, m, n, T, 0, 1, a, b)
		if err != nil {
			return Selection{}, err
		}
		if t := l.predictPlanOverlap(p); t < best.Predicted {
			best = Selection{T: T, Predicted: t}
		}
	}
	if best.T == 0 {
		p, err := l.factorPlan(routine, m, n, minDim, 0, 1, a, b)
		if err != nil {
			return Selection{}, err
		}
		best = Selection{T: minDim, Predicted: l.predictPlanOverlap(p)}
	}
	return best, nil
}

// Dpotrf computes the in-place lower-triangular Cholesky factorization
// A = L*L^T of the n x n matrix A through the task-graph scheduler, with
// automatic tiling-size selection. On functional sessions A's lower
// triangle is overwritten by L; tiles strictly above the diagonal are
// never touched.
func (l *Library) Dpotrf(n int, a *Matrix) (Result, error) {
	sel, err := l.SelectFactorTile("dpotrf", n, n, a, nil)
	if err != nil {
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.DpotrfTile(n, a, sel.T)
}

// DpotrfTile is Dpotrf with an explicit tiling size.
func (l *Library) DpotrfTile(n int, a *Matrix, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.ctx.Cholesky(sched.CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: a, T: T})
}

// Dgetrf computes the in-place unpivoted LU factorization A = L*U of the
// n x n matrix A with automatic tiling-size selection. The schedule models
// no row exchanges; functional callers supply pivot-free (e.g. diagonally
// dominant) matrices.
func (l *Library) Dgetrf(n int, a *Matrix) (Result, error) {
	sel, err := l.SelectFactorTile("dgetrf", n, n, a, nil)
	if err != nil {
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.DgetrfTile(n, a, sel.T)
}

// DgetrfTile is Dgetrf with an explicit tiling size.
func (l *Library) DgetrfTile(n int, a *Matrix, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.ctx.LU(sched.LUOpts{Dtype: kernelmodel.F64, N: n, A: a, T: T})
}

// Dtrsm solves the left/lower/no-trans triangular system A*X = alpha*B in
// place (X overwrites the m x n matrix B; diag is 'N' or 'U') with
// automatic tiling-size selection.
func (l *Library) Dtrsm(diag byte, m, n int, alpha float64, a, b *Matrix) (Result, error) {
	sel, err := l.SelectFactorTile("dtrsm", m, n, a, b)
	if err != nil {
		return Result{}, fmt.Errorf("cocopelia: tile selection: %w", err)
	}
	return l.DtrsmTile(diag, m, n, alpha, a, b, sel.T)
}

// DtrsmTile is Dtrsm with an explicit tiling size.
func (l *Library) DtrsmTile(diag byte, m, n int, alpha float64, a, b *Matrix, T int) (Result, error) {
	if T <= 0 {
		return Result{}, fmt.Errorf("cocopelia: non-positive tile %d", T)
	}
	return l.ctx.Trsm(sched.TrsmOpts{
		Dtype: kernelmodel.F64, Diag: diag, M: m, N: n,
		Alpha: alpha, A: a, B: b, T: T,
	})
}

// DeviceMatrix allocates a device-resident matrix on the session's GPU,
// optionally uploading initial host data (a synchronous transfer outside
// any measured run). Use it to stage the partial-offload scenarios where
// operands already live in GPU memory.
func (l *Library) DeviceMatrix(routine string, rows, cols int, data []float64) (*Matrix, error) {
	dt := kernelmodel.F64
	if routine == "sgemm" {
		dt = kernelmodel.F32
	}
	backed := data != nil
	buf, err := l.rt.Malloc(dt, int64(rows)*int64(cols), backed)
	if err != nil {
		return nil, err
	}
	if data != nil {
		s := l.rt.NewStream()
		if _, err := s.MemcpyH2DAsync(buf, 0, data, nil, int64(rows)*int64(cols)); err != nil {
			return nil, err
		}
		if _, err := l.rt.Sync(); err != nil {
			return nil, err
		}
	}
	return &Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}, nil
}

// DeviceVector allocates a device-resident vector, optionally uploading
// initial host data.
func (l *Library) DeviceVector(n int, data []float64) (*Vector, error) {
	buf, err := l.rt.Malloc(kernelmodel.F64, int64(n), data != nil)
	if err != nil {
		return nil, err
	}
	if data != nil {
		s := l.rt.NewStream()
		if _, err := s.MemcpyH2DAsync(buf, 0, data, nil, int64(n)); err != nil {
			return nil, err
		}
		if _, err := l.rt.Sync(); err != nil {
			return nil, err
		}
	}
	return &Vector{N: n, Loc: model.OnDevice, Dev: buf}, nil
}

// ReadDeviceMatrix copies a device-resident matrix back to a host slice
// (synchronously, outside any measured run). It is a test/inspection aid
// for functional sessions.
func (l *Library) ReadDeviceMatrix(m *Matrix, dst []float64) error {
	if m == nil || m.Loc != model.OnDevice || m.Dev == nil {
		return errors.New("cocopelia: not a device matrix")
	}
	s := l.rt.NewStream()
	if _, err := s.MemcpyD2HAsync(dst, nil, m.Dev, 0, int64(m.Rows)*int64(m.Cols)); err != nil {
		return err
	}
	_, err := l.rt.Sync()
	return err
}

// Close releases pooled device buffers.
func (l *Library) Close() error { return l.ctx.ReleaseAll() }
