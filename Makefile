GO ?= go

.PHONY: build test vet race verify bench results

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the eval and
# microbench packages exercise the parallel campaign engine, so this is
# the concurrency regression gate.
race:
	$(GO) test -race ./...

# verify is the pre-commit gate: compile, vet, and the race-enabled suite.
verify: build vet race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

results: build
	$(GO) run ./cmd/cocodeploy -out results
	$(GO) run ./cmd/cocoeval -deploy results -out results
