GO ?= go

.PHONY: build test vet lint race verify bench bench-blas bench-blas-smoke results

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's invariant analyzers (determinism, maporder,
# outputpurity, layering, floatorder — see DESIGN.md "Enforced
# invariants") via go run, so the check needs no installed binaries.
lint:
	$(GO) run ./cmd/cocolint ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the eval and
# microbench packages exercise the parallel campaign engine, so this is
# the concurrency regression gate.
race:
	$(GO) test -race ./...

# verify is the pre-commit gate: compile, vet, the invariant analyzers,
# the race-enabled suite and the build-only benchmark smoke.
verify: build vet lint race bench-blas-smoke

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-blas measures the host GEMM payload engine (blocked vs naive,
# serial and pooled) and writes GFLOP/s per (routine, size) as JSON.
bench-blas:
	$(GO) run ./cmd/cocobench -out results/bench-blas.json

# bench-blas-smoke is the verify-time gate for the benchmark tool: it
# must keep compiling, but verify should not spend minutes measuring.
bench-blas-smoke:
	$(GO) build -o /dev/null ./cmd/cocobench

results: build
	$(GO) run ./cmd/cocodeploy -out results
	$(GO) run ./cmd/cocoeval -deploy results -out results
