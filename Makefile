GO ?= go

.PHONY: build test vet lint lint-json race verify bench bench-blas \
	bench-blas-check bench-blas-smoke bench-campaign bench-campaign-check \
	bench-campaign-smoke bench-factor bench-factor-check cross-arm64 \
	plan-golden-smoke profile results

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's invariant analyzers (determinism, maporder,
# outputpurity, goroutines, layering, floatorder, hotpath — see DESIGN.md
# "Enforced invariants") via go run, so the check needs no installed
# binaries.
lint:
	$(GO) run ./cmd/cocolint ./...

# lint-json writes the same findings machine-readably for CI artifact
# diffing; the run summary stays on stderr so the file is pure JSON.
lint-json:
	@mkdir -p results
	$(GO) run ./cmd/cocolint -json ./... > results/lint.json

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the eval and
# microbench packages exercise the parallel campaign engine, so this is
# the concurrency regression gate.
race:
	$(GO) test -race ./...

# verify is the pre-commit gate: compile, vet, the invariant analyzers,
# the race-enabled suite, the build-only benchmark smoke, a sub-second
# run of the campaign-throughput mode, the factorization-sweep identity
# gate, the golden tile-plan check, and the arm64 cross-compile (the NEON
# kernels have no native CI runner, so assemble+vet is their regression
# gate).
verify: build vet lint race bench-blas-smoke bench-campaign-smoke \
	bench-factor-check plan-golden-smoke cross-arm64

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# bench-blas measures the host GEMM payload engine (blocked vs naive,
# serial and pooled) and writes GFLOP/s per (routine, size) as JSON.
bench-blas:
	$(GO) run ./cmd/cocobench -out results/bench-blas.json

# bench-blas-check re-measures the kernel sweep at the fast sizes and
# fails if any (routine, size) row drops below 85% of the committed
# baseline GFLOP/s. Run after touching internal/blas kernels, packing or
# dispatch; refresh the baseline with bench-blas when a slowdown is
# intentional. The 2048 rows are skipped: the naive oracle at that size
# dominates a check run's wall time without adding kernel coverage.
bench-blas-check:
	$(GO) run ./cmd/cocobench -sizes 256,512,1024 -check results/bench-blas.json

# bench-blas-smoke is the verify-time gate for the benchmark tool: it
# must keep compiling, but verify should not spend minutes measuring.
bench-blas-smoke:
	$(GO) build -o /dev/null ./cmd/cocobench

# bench-campaign measures the discrete-event campaign pipeline itself
# (cells/sec, events/sec on a timing-only sweep) — the throughput number
# the DES-core optimizations are judged by.
bench-campaign:
	$(GO) run ./cmd/cocobench -campaign -out results/bench-campaign.json

# bench-campaign-check re-runs the reference campaign and fails if the
# event/plan-cache counters drift from the committed baseline (the sweep
# must stay byte-identical) or if throughput regresses more than 15%
# against it. Run after any change to the DES core, scheduler, or eval
# pipeline; refresh the baseline with bench-campaign when a slowdown is
# intentional.
bench-campaign-check:
	$(GO) run ./cmd/cocobench -campaign -check results/bench-campaign.json

# bench-campaign-smoke runs the campaign mode on a tiny work-list (one
# size, one library) so verify exercises the whole DES pipeline in well
# under a second without keeping an output file.
bench-campaign-smoke:
	$(GO) run ./cmd/cocobench -campaign -smoke -out /dev/null

# bench-factor sweeps the tiled factorization planners (cholesky, lu,
# trsm over the task-graph IR) and records each cell's simulated makespan,
# kernel count and traffic. Refresh the baseline with this target when a
# planner change is intentional.
bench-factor:
	$(GO) run ./cmd/cocobench -factor -out results/bench-factor.json

# bench-factor-check re-runs the factorization sweep and fails on ANY
# drift from the committed baseline — the simulated fields are exact, so
# this is a byte-identity gate on the task-graph planners and their
# replay, not a tolerance check. Sub-second (timing-only simulation).
bench-factor-check:
	$(GO) run ./cmd/cocobench -factor -check results/bench-factor.json

# cross-arm64 cross-compiles and vets the whole module for linux/arm64,
# gating the NEON micro-kernels (gemm_arm64.s) and their build-tagged
# registration on hosts without arm64 hardware or emulation.
cross-arm64:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=arm64 $(GO) vet ./...

# plan-golden-smoke pins the tile-operation IR: the golden plan dumps in
# internal/plan must stay byte-identical, since every scheduler entry point
# replays these plans. Sub-second by construction (tiny shapes, no sim).
plan-golden-smoke:
	$(GO) test -run 'TestGoldenPlans' -count=1 ./internal/plan

# profile captures a CPU profile of the campaign sweep for pprof:
#   go tool pprof -top results/campaign.pprof
profile:
	$(GO) run ./cmd/cocobench -campaign -cpuprofile results/campaign.pprof \
		-out results/bench-campaign.json

results: build
	$(GO) run ./cmd/cocodeploy -out results
	$(GO) run ./cmd/cocoeval -deploy results -out results
