GO ?= go

.PHONY: build test vet lint race verify bench results

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's invariant analyzers (determinism, maporder,
# outputpurity, layering, floatorder — see DESIGN.md "Enforced
# invariants") via go run, so the check needs no installed binaries.
lint:
	$(GO) run ./cmd/cocolint ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the eval and
# microbench packages exercise the parallel campaign engine, so this is
# the concurrency regression gate.
race:
	$(GO) test -race ./...

# verify is the pre-commit gate: compile, vet, the invariant analyzers,
# and the race-enabled suite.
verify: build vet lint race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

results: build
	$(GO) run ./cmd/cocodeploy -out results
	$(GO) run ./cmd/cocoeval -deploy results -out results
