package cocopelia

import (
	"math"
	"math/rand"
	"testing"
)

func TestDgemvAutoTileFunctional(t *testing.T) {
	lib := openBacked(t)
	defer lib.Close()
	m, n := 96, 80
	rng := rand.New(rand.NewSource(31))
	a := make([]float64, m*n)
	x := make([]float64, n)
	y := make([]float64, m)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i+j*m] * x[j]
		}
		ref[i] = 2 * s
	}
	res, err := lib.Dgemv(m, n, 2.0, HostMatrix(m, n, a), HostVector(n, x), 0.0, HostVector(m, y))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-10 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
	if res.Subkernels <= 0 || res.T <= 0 {
		t.Errorf("implausible result %+v", res)
	}
}

func TestDgemvSelectionFromGrid(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	A := HostMatrix(16384, 16384, nil)
	x := HostVector(16384, nil)
	sel, err := lib.SelectGemvTile(16384, 16384, A, x, x)
	if err != nil {
		t.Fatal(err)
	}
	if sel.T < 256 || float64(sel.T) > 16384/1.5 {
		t.Errorf("gemv tile %d outside feasible range", sel.T)
	}
	res, err := lib.Dgemv(16384, 16384, 1, A, x, 1, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != sel.T {
		t.Errorf("auto tile %d != selection %d", res.T, sel.T)
	}
	// gemv is transfer-bound: makespan within a few percent of the A
	// matrix h2d time.
	h2d := float64(res.BytesH2D) / lib.Testbed().H2D.BandwidthBps
	if res.Seconds > 1.1*h2d {
		t.Errorf("gemv %g poorly overlapped (h2d bound %g)", res.Seconds, h2d)
	}
}

func TestDgemvTileExplicit(t *testing.T) {
	lib := openTiming(t)
	defer lib.Close()
	A := HostMatrix(4096, 4096, nil)
	x := HostVector(4096, nil)
	res, err := lib.DgemvTile(4096, 4096, 1, A, x, 1, x, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 1024 || res.Subkernels != 16 {
		t.Errorf("explicit gemv tile wrong: %+v", res)
	}
	if _, err := lib.DgemvTile(64, 64, 1, A, x, 1, x, 0); err == nil {
		t.Error("T=0 should error")
	}
}
