module cocopelia

go 1.22
