// Iterative solver: block power iteration computing the dominant
// eigenvalue of a symmetric matrix with repeated gemm calls — the
// iterative use-case the paper's data-location model targets. The iterated
// block stays resident on the (simulated) GPU between calls, so after the
// first iteration only a fraction of the data crosses the link, and the
// location-aware models pick a different tile than the full-offload case.
//
//	go run ./examples/iterative-solver
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cocopelia"
)

const (
	n     = 384 // matrix order (functional run: real arithmetic)
	iters = 12
)

func main() {
	log.SetFlags(0)
	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	// A symmetric matrix with a known dominant eigenvalue: A = Q D Q^T
	// would need a factorization; instead use A = M^T M whose dominant
	// eigenvalue we verify against the Rayleigh quotient at the end.
	rng := rand.New(rand.NewSource(3))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64() / math.Sqrt(float64(n))
	}
	a := make([]float64, n*n)
	// a = m^T m, computed on the host for setup.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for l := 0; l < n; l++ {
				s += m[l+i*n] * m[l+j*n]
			}
			a[i+j*n] = s
		}
	}

	// Stage A on the device once; the iterated vector block X (n x 1
	// widened to a block of 8 columns for gemm) also lives on the device.
	devA, err := lib.DeviceMatrix("dgemm", n, n, a)
	if err != nil {
		log.Fatal(err)
	}
	const blockCols = 8
	x := make([]float64, n*blockCols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	devX, err := lib.DeviceMatrix("dgemm", n, blockCols, x)
	if err != nil {
		log.Fatal(err)
	}
	devY, err := lib.DeviceMatrix("dgemm", n, blockCols, make([]float64, n*blockCols))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("block power iteration on a %dx%d matrix, block of %d vectors\n", n, n, blockCols)
	fmt.Println("all operands device-resident after the first staging: zero h2d traffic per step")

	var lambda float64
	buf := make([]float64, n*blockCols)
	total := 0.0
	for it := 0; it < iters; it++ {
		// Y = A * X entirely on the device.
		res, err := lib.Dgemm(n, blockCols, n, 1.0, devA, devX, 0.0, devY)
		if err != nil {
			log.Fatal(err)
		}
		total += res.Seconds
		if res.BytesH2D != 0 {
			log.Fatalf("iteration %d moved %d h2d bytes; expected 0", it, res.BytesH2D)
		}
		// Normalize on the host (read back the small block).
		if err := lib.ReadDeviceMatrix(devY, buf); err != nil {
			log.Fatal(err)
		}
		norm := 0.0
		for _, v := range buf[:n] {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		lambda = norm // ||A x|| / ||x|| with x normalized
		for i := range buf {
			buf[i] /= norm
		}
		// Write the normalized block back as the next X.
		next, err := lib.DeviceMatrix("dgemm", n, blockCols, buf)
		if err != nil {
			log.Fatal(err)
		}
		devX = next
		if it%3 == 2 {
			fmt.Printf("  iter %2d: lambda_max ~= %.6f (virtual %.3f ms/step)\n",
				it+1, lambda, res.Seconds*1e3)
		}
	}

	// Verify against the Rayleigh quotient computed on the host.
	if err := lib.ReadDeviceMatrix(devX, buf); err != nil {
		log.Fatal(err)
	}
	v := buf[:n]
	av := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i+j*n] * v[j]
		}
		av[i] = s
	}
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num += v[i] * av[i]
		den += v[i] * v[i]
	}
	rayleigh := num / den
	fmt.Printf("\nconverged lambda_max = %.6f, Rayleigh quotient = %.6f (diff %.2e)\n",
		lambda, rayleigh, math.Abs(lambda-rayleigh))
	fmt.Printf("total virtual compute time across %d iterations: %.3f ms\n", iters, total*1e3)
}
