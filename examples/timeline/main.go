// Timeline: visualize 3-way concurrency on the simulated device — the
// paper's Fig. 2 narrative. A reuse-aware tiled dgemm starts transfer-
// bound (the h2d engine saturated, compute gaps) and becomes compute-bound
// once the input tiles are resident.
//
//	go run ./examples/timeline [-size 8192] [-T 1024]
package main

import (
	"flag"
	"fmt"
	"log"

	"cocopelia"
	"cocopelia/internal/trace"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("size", 8192, "square gemm size")
	tile := flag.Int("T", 1024, "tiling size")
	flag.Parse()

	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Traced: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	M := *size
	A := cocopelia.HostMatrix(M, M, nil)
	res, err := lib.DgemmTile(M, M, M, 1.0, A, A, 1.0, A, *tile)
	if err != nil {
		log.Fatal(err)
	}
	tr := lib.Trace()

	fmt.Printf("dgemm %d^3 at T=%d: %.4f s virtual, %d sub-kernels\n\n", M, *tile, res.Seconds, res.Subkernels)
	fmt.Print(tr.Gantt(110))
	fmt.Println()

	util := tr.Utilization()
	fmt.Printf("engine utilization: h2d %.0f%%  exec %.0f%%  d2h %.0f%%\n",
		100*util[trace.LaneH2D], 100*util[trace.LaneCompute], 100*util[trace.LaneD2H])
	fmt.Printf("3-way overlap: %.0f%% of the run had at least two engines busy\n\n", 100*tr.OverlapFraction())

	fmt.Println("dominant engine per tenth of the run (transfer-bound -> compute-bound):")
	for _, ph := range tr.Phases(10) {
		fmt.Printf("  [%6.3fs .. %6.3fs]  %s\n", ph.Start, ph.End, ph.Dominant)
	}
}
