// Tiling explorer: sweep the tiling size for one gemm problem on both
// simulated testbeds and visualize the performance curve the paper's
// Fig. 1 motivates — including where the CoCoPeLia model's automatic
// selection lands relative to the measured optimum.
//
//	go run ./examples/tiling-explorer [-size 8192]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cocopelia"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("size", 8192, "square gemm size (m=n=k)")
	flag.Parse()
	M := *size

	type point struct {
		T      int
		gflops float64
	}

	for _, tb := range []*cocopelia.Testbed{cocopelia.TestbedI(), cocopelia.TestbedII()} {
		fmt.Printf("=== %s (%s) ===\n", tb.Name, tb.GPU.Name)
		lib, err := cocopelia.Open(tb, cocopelia.Options{})
		if err != nil {
			log.Fatal(err)
		}

		A := cocopelia.HostMatrix(M, M, nil)
		sel, err := lib.SelectGemmTile("dgemm", M, M, M, A, A, A)
		if err != nil {
			log.Fatal(err)
		}

		var pts []point
		best := point{}
		maxT := int(float64(M) / 1.5)
		for T := 512; T <= maxT; T += 512 {
			res, err := lib.DgemmTile(M, M, M, 1.0, A, A, 1.0, A, T)
			if err != nil {
				log.Fatal(err)
			}
			g := 2 * float64(M) * float64(M) * float64(M) / res.Seconds / 1e9
			pts = append(pts, point{T, g})
			if g > best.gflops {
				best = point{T, g}
			}
		}

		for _, p := range pts {
			bar := strings.Repeat("*", int(46*p.gflops/best.gflops))
			notes := ""
			if p.T == best.T {
				notes += "  <- measured optimum"
			}
			nearSel, dist := 0, 1<<31
			for _, q := range pts {
				d := q.T - sel.T
				if d < 0 {
					d = -d
				}
				if d < dist {
					nearSel, dist = q.T, d
				}
			}
			if p.T == nearSel {
				notes += fmt.Sprintf("  <- model selects T=%d", sel.T)
			}
			fmt.Printf("  T=%5d %7.0f GF/s |%-46s|%s\n", p.T, p.gflops, bar, notes)
		}
		atSel, err := lib.DgemmTile(M, M, M, 1.0, A, A, 1.0, A, sel.T)
		if err != nil {
			log.Fatal(err)
		}
		gSel := 2 * float64(M) * float64(M) * float64(M) / atSel.Seconds / 1e9
		fmt.Printf("  model choice achieves %.0f GF/s = %.1f%% of the measured optimum\n\n",
			gSel, 100*gSel/best.gflops)
		if err := lib.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
