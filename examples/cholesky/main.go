// Tiled Cholesky factorization through the CoCoPeLia task-graph planner —
// the kind of higher-level computation the paper's introduction motivates
// ("domain experts rely on standardized and performance-optimized
// [BLAS] libraries to build more complex simulations").
//
// Unlike a host-driven blocked loop that offloads only the trailing
// update, the whole right-looking factorization is planned as ONE task
// graph: POTRF, TRSM, SYRK and GEMM tile kernels with explicit dependency
// edges, so a factored tile forwards directly from the kernel that
// produced it to the kernels that consume it while other tiles are still
// in flight. The example prints the Werkhoven-style full-overlap lower
// bound (max of kernel-time sum, h2d time, d2h time — derived from the
// plan's volume annotations) next to the simulated makespan, then
// verifies L against the original matrix.
//
//	go run ./examples/cholesky [-n 1536] [-t 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"cocopelia"
	"cocopelia/internal/blas"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 1536, "matrix order")
	tile := flag.Int("t", 0, "tiling size (0 = auto-select)")
	flag.Parse()
	N := *n

	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	// Build a well-conditioned SPD matrix A = M·Mᵀ + N·I.
	rng := rand.New(rand.NewSource(7))
	m := make([]float64, N*N)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, N*N)
	if err := blas.Dgemm(blas.NoTrans, blas.Trans, N, N, N, 1, m, N, m, N, 0, a, N); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < N; i++ {
		a[i+i*N] += float64(N)
	}
	orig := append([]float64(nil), a...)
	mat := cocopelia.HostMatrix(N, N, a)

	// Pick the tile (or adopt the flag) and report the model's view.
	sel, err := lib.SelectFactorTile("dpotrf", N, N, mat, nil)
	if err != nil {
		log.Fatal(err)
	}
	T := sel.T
	if *tile > 0 {
		T = *tile
	}
	fmt.Printf("tiled Cholesky of a %dx%d SPD matrix, tile %d", N, N, T)
	if *tile == 0 {
		fmt.Printf(" (auto-selected)")
	}
	fmt.Println()

	res, err := lib.DpotrfTile(N, mat, T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d tile kernels, %.1f MB up, %.1f MB down\n",
		res.Subkernels, float64(res.BytesH2D)/1e6, float64(res.BytesD2H)/1e6)
	fmt.Printf("  predicted (full-overlap bound) %8.3f ms\n", sel.Predicted*1e3)
	fmt.Printf("  simulated makespan             %8.3f ms  (%.2fx the bound)\n",
		res.Seconds*1e3, res.Seconds/sel.Predicted)

	// Verify: zero the strict upper triangle (above-diagonal entries inside
	// diagonal tiles hold intermediate update values — the simulated SYRK
	// payload writes full tiles), compute L·Lᵀ and compare against A.
	l := append([]float64(nil), a...)
	for j := 0; j < N; j++ {
		for i := 0; i < j; i++ {
			l[i+j*N] = 0
		}
	}
	check := make([]float64, N*N)
	if err := blas.Dgemm(blas.NoTrans, blas.Trans, N, N, N, 1, l, N, l, N, 0, check, N); err != nil {
		log.Fatal(err)
	}
	maxErr, ref := 0.0, 0.0
	for i := range check {
		maxErr = math.Max(maxErr, math.Abs(check[i]-orig[i]))
		ref = math.Max(ref, math.Abs(orig[i]))
	}
	fmt.Printf("  residual ||L*L^T - A||_max / ||A||_max = %.2e\n", maxErr/ref)
	if maxErr/ref > 1e-10 {
		log.Fatal("factorization verification FAILED")
	}
	fmt.Println("  factorization verified against the original matrix")
}
