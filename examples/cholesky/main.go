// Blocked Cholesky factorization on top of the CoCoPeLia public API — the
// kind of higher-level computation the paper's introduction motivates
// ("domain experts rely on standardized and performance-optimized
// [BLAS] libraries to build more complex simulations").
//
// The right-looking blocked algorithm factors a symmetric positive-
// definite A = L·Lᵀ in panels: the small diagonal block factors on the
// host, the panel solve runs on the host (trsm), and the large trailing
// update — the FLOP-dominant step — offloads through CoCoPeLia's
// auto-tuned syrk/gemm with 3-way overlap on the simulated GPU.
//
//	go run ./examples/cholesky [-n 768] [-nb 128]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"cocopelia"
	"cocopelia/internal/blas"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 768, "matrix order")
	nb := flag.Int("nb", 128, "panel width")
	flag.Parse()
	N, NB := *n, *nb

	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	// Build a well-conditioned SPD matrix A = M·Mᵀ + N·I.
	rng := rand.New(rand.NewSource(7))
	m := make([]float64, N*N)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, N*N)
	if err := blas.Dgemm(blas.NoTrans, blas.Trans, N, N, N, 1, m, N, m, N, 0, a, N); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < N; i++ {
		a[i+i*N] += float64(N)
	}
	orig := append([]float64(nil), a...)

	fmt.Printf("blocked Cholesky of a %dx%d SPD matrix, panel %d\n", N, N, NB)
	offloaded := 0.0
	panels := 0
	for j := 0; j < N; j += NB {
		jb := min(NB, N-j)

		// 1. Factor the diagonal block on the host (unblocked Cholesky).
		if err := cholUnblocked(a, N, j, jb); err != nil {
			log.Fatalf("panel %d: %v", j/NB, err)
		}

		if j+jb >= N {
			break
		}
		rest := N - j - jb

		// 2. Panel solve on the host: L21 = A21 · L11^-T.
		if err := blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
			rest, jb, 1, a[j+j*N:], N, a[(j+jb)+j*N:], N); err != nil {
			log.Fatal(err)
		}

		// 3. Trailing update on the GPU through CoCoPeLia:
		//    A22 -= L21 · L21ᵀ  (syrk with alpha = -1, beta = 1).
		l21 := &cocopelia.Matrix{
			Rows: rest, Cols: jb, Loc: cocopelia.OnHost,
			HostF64: a[(j+jb)+j*N:], HostLd: N,
		}
		a22 := &cocopelia.Matrix{
			Rows: rest, Cols: rest, Loc: cocopelia.OnHost,
			HostF64: a[(j+jb)+(j+jb)*N:], HostLd: N,
		}
		res, err := lib.Dsyrk('N', rest, jb, -1, l21, 1, a22)
		if err != nil {
			log.Fatal(err)
		}
		offloaded += res.Seconds
		panels++
	}

	// Verify: zero the strict upper triangle, compute L·Lᵀ and compare.
	l := append([]float64(nil), a...)
	for j := 0; j < N; j++ {
		for i := 0; i < j; i++ {
			l[i+j*N] = 0
		}
	}
	check := make([]float64, N*N)
	if err := blas.Dgemm(blas.NoTrans, blas.Trans, N, N, N, 1, l, N, l, N, 0, check, N); err != nil {
		log.Fatal(err)
	}
	maxErr, ref := 0.0, 0.0
	for i := range check {
		maxErr = math.Max(maxErr, math.Abs(check[i]-orig[i]))
		ref = math.Max(ref, math.Abs(orig[i]))
	}
	fmt.Printf("  %d trailing updates offloaded, %.3f ms simulated GPU time\n", panels, offloaded*1e3)
	fmt.Printf("  residual ||L*L^T - A||_max / ||A||_max = %.2e\n", maxErr/ref)
	if maxErr/ref > 1e-10 {
		log.Fatal("factorization verification FAILED")
	}
	fmt.Println("  factorization verified against the original matrix")
}

// cholUnblocked factors the jb x jb diagonal block at (j, j) in place
// (lower triangle), referencing columns below it for the already-updated
// panel.
func cholUnblocked(a []float64, lda, j, jb int) error {
	for p := j; p < j+jb; p++ {
		d := a[p+p*lda]
		for l := j; l < p; l++ {
			d -= a[p+l*lda] * a[p+l*lda]
		}
		if d <= 0 {
			return fmt.Errorf("matrix not positive definite at %d (pivot %g)", p, d)
		}
		d = math.Sqrt(d)
		a[p+p*lda] = d
		for i := p + 1; i < j+jb; i++ {
			s := a[i+p*lda]
			for l := j; l < p; l++ {
				s -= a[i+l*lda] * a[p+l*lda]
			}
			a[i+p*lda] = s / d
		}
	}
	return nil
}
