// Quickstart: deploy CoCoPeLia on a simulated testbed, run an auto-tuned
// dgemm, and compare the model's prediction with the simulated execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cocopelia"
)

func main() {
	log.SetFlags(0)

	// 1. Open a session on the V100-class testbed. This runs the paper's
	//    deployment micro-benchmarks (a few virtual minutes, milliseconds
	//    of wall time) and fits the transfer and kernel sub-models.
	fmt.Println("deploying CoCoPeLia on Testbed II (simulated V100, PCIe Gen3)...")
	lib, err := cocopelia.Open(cocopelia.TestbedII(), cocopelia.Options{Backed: true})
	if err != nil {
		log.Fatal(err)
	}
	defer lib.Close()

	// 2. A small functional problem first: real data, real arithmetic.
	m, n, k := 512, 384, 448
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := lib.Dgemm(m, n, k, 1.0,
		cocopelia.HostMatrix(m, k, a),
		cocopelia.HostMatrix(k, n, b),
		0.0, cocopelia.HostMatrix(m, n, c))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional dgemm %dx%dx%d: T=%d, %d sub-kernels, %.4f ms virtual\n",
		m, n, k, res.T, res.Subkernels, res.Seconds*1e3)
	fmt.Printf("spot check: c[0] = %+.4f (computed on the simulated GPU)\n", c[0])

	// 3. A paper-scale timing problem with automatic tile selection: the
	//    runtime consults the DR model, picks T, and schedules the tiled
	//    execution with full data reuse and 3-way overlap.
	timing, err := cocopelia.Open(cocopelia.TestbedII(),
		cocopelia.Options{Deployment: lib.Deployment()})
	if err != nil {
		log.Fatal(err)
	}
	defer timing.Close()

	M := 8192
	A := cocopelia.HostMatrix(M, M, nil) // nil storage: timing-only
	sel, err := timing.SelectGemmTile("dgemm", M, M, M, A, A, A)
	if err != nil {
		log.Fatal(err)
	}
	res, err = timing.Dgemm(M, M, M, 1.0, A, A, 1.0, A)
	if err != nil {
		log.Fatal(err)
	}
	gflops := 2 * float64(M) * float64(M) * float64(M) / res.Seconds / 1e9
	fmt.Printf("\ntiming dgemm %dx%dx%d (full offload):\n", M, M, M)
	fmt.Printf("  selected tile      T=%d\n", res.T)
	fmt.Printf("  predicted offload  %.4f s (DR model)\n", sel.Predicted)
	fmt.Printf("  simulated offload  %.4f s  ->  %.0f GFLOP/s\n", res.Seconds, gflops)
	fmt.Printf("  prediction error   %+.1f%%\n", 100*(sel.Predicted-res.Seconds)/res.Seconds)
	fmt.Printf("  traffic            h2d %.0f MiB (reuse: |A|+|B|+|C| exactly), d2h %.0f MiB\n",
		float64(res.BytesH2D)/(1<<20), float64(res.BytesD2H)/(1<<20))
}
