// Multi-GPU scaling: the paper's future-work direction, implemented on the
// simulated substrate. One dgemm splits into per-GPU column panels; each
// GPU runs the reuse-aware tile scheduler behind its own PCIe link, and
// the cluster-extended DR model picks the tile size.
//
//	go run ./examples/multigpu [-size 16384]
package main

import (
	"flag"
	"fmt"
	"log"

	"cocopelia/internal/hybrid"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/multigpu"
	"cocopelia/internal/operand"
	"cocopelia/internal/predictor"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("size", 16384, "square gemm size (m=n=k)")
	flag.Parse()
	m := *size

	tb := machine.TestbedII()
	fmt.Printf("deploying on %s...\n", tb.Name)
	dep := microbench.Run(tb, microbench.DefaultConfig())
	sm, err := predictor.New(dep).SubModels("dgemm", 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndgemm %d^3, full offload, per-GPU links (%s class)\n\n", m, tb.GPU.Name)
	fmt.Printf("%6s %8s %12s %12s %12s %10s\n", "GPUs", "T(model)", "pred (s)", "meas (s)", "GFLOP/s", "scaling")
	base := 0.0
	for _, gpus := range []int{1, 2, 4, 8} {
		sel, err := multigpu.SelectT(sm, "dgemm", 8, m, m, m, gpus)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := multigpu.NewCluster(tb, gpus, 17, false)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cl.Gemm(multigpu.GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A: operand.HostMatrix(m, m, nil),
			B: operand.HostMatrix(m, m, nil),
			C: operand.HostMatrix(m, m, nil),
			T: sel.T,
		})
		if err != nil {
			log.Fatal(err)
		}
		if gpus == 1 {
			base = res.Seconds
		}
		fmt.Printf("%6d %8d %12.4f %12.4f %12.0f %9.2fx\n",
			gpus, sel.T, sel.Predicted, res.Seconds, res.Gflops(m, m, m), base/res.Seconds)
	}
	fmt.Println("\nscaling saturates once every panel is transfer-bound on its own link;")
	fmt.Println("the cluster-extended DR model predicts exactly that crossover.")

	// Host-assisted execution: the CPU takes a model-balanced column panel.
	plan, err := hybrid.PlanSplit(sm, tb, "dgemm", 8, m, m, m, 1)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := multigpu.NewCluster(tb, 1, 23, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hybrid.Gemm(cl, hybrid.GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A:    operand.HostMatrix(m, m, nil),
		B:    operand.HostMatrix(m, m, nil),
		C:    operand.HostMatrix(m, m, nil),
		Plan: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhost-assisted (1 GPU + CPU): host takes %d of %d columns -> %.4fs (%.0f GFLOP/s)\n",
		plan.HostCols, m, res.Seconds, res.Gflops(m, m, m))
}
