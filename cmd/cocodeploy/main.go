// Command cocodeploy runs the CoCoPeLia deployment phase (the paper's
// Section IV-A micro-benchmarks) on one or both simulated testbeds, prints
// the fitted transfer sub-models in the format of the paper's Table II,
// and writes the deployment databases to JSON files for reuse by cocoeval
// and cocorun.
//
// Usage:
//
//	cocodeploy [-testbed I|II|both] [-out DIR] [-parallel N]
//
// -parallel N runs the independent micro-benchmark cells on N worker
// goroutines (0 = all cores, 1 = serial). Each cell seeds its noise from
// the cell key, so the fitted databases are identical at any worker
// count; the wall-clock summary goes to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocodeploy: ")
	testbed := flag.String("testbed", "both", "testbed to deploy: I, II or both")
	out := flag.String("out", "results", "output directory for deployment JSON files")
	par := flag.Int("parallel", 0, "micro-benchmark workers: 0 = all cores, 1 = serial")
	flag.Parse()

	var tbs []*machine.Testbed
	switch strings.ToUpper(*testbed) {
	case "I":
		tbs = []*machine.Testbed{machine.TestbedI()}
	case "II":
		tbs = []*machine.Testbed{machine.TestbedII()}
	case "BOTH":
		tbs = machine.Testbeds()
	default:
		log.Fatalf("unknown testbed %q (want I, II or both)", *testbed)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := microbench.DefaultConfig()
	cfg.Workers = *par

	var deps []*microbench.Deployment
	for _, tb := range tbs {
		// Progress and file-system diagnostics go to stderr; stdout
		// carries only the deterministic deployment report (virtual time
		// and the Table II rendering).
		log.Printf("deploying on %s (%s, %s)...", tb.Name, tb.GPU.Name, tb.PCIe)
		start := time.Now()
		dep := microbench.Run(tb, cfg)
		log.Printf("%s: %.2fs wall", tb.Name, time.Since(start).Seconds())
		fmt.Printf("%s micro-benchmarks consumed %.1f virtual minutes\n", tb.Name, dep.VirtualSeconds/60)
		path := filepath.Join(*out, deployFileName(tb.Name))
		if err := dep.Save(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
		deps = append(deps, dep)
	}
	fmt.Println()
	fmt.Print(microbench.TableII(deps...))
}

func deployFileName(testbedName string) string {
	return "deploy-" + strings.ReplaceAll(strings.ToLower(testbedName), " ", "-") + ".json"
}
