// Command cocoeval regenerates the paper's tables and figures on the
// simulated testbeds. Each experiment prints a text rendering and writes a
// CSV next to it; see EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	cocoeval [-exp all|table2|fig1|fig2|fig4|fig5|fig6|fig7|table4|ablation|sensitivity]
//	         [-testbed I|II|both] [-full] [-out DIR] [-deploy DIR] [-parallel N]
//
// By default the reduced ("fast") problem sets run; -full selects the
// paper's complete validation sets (substantially slower).
//
// -parallel N fans the campaign's independent simulations across N worker
// goroutines (0 = all cores, 1 = the legacy serial path). Every noise
// seed derives from the measurement cell's key, never from execution
// order, so the experiment output on stdout and the CSV files are
// byte-identical at any worker count; the run summary (wall-clock, worker
// utilization, cache statistics) goes to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cocopelia/internal/eval"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocoeval: ")
	exp := flag.String("exp", "all", "experiment: all, table2, fig1, fig2, fig4, fig5, fig6, fig7, table4, ablation, sensitivity")
	testbed := flag.String("testbed", "both", "testbed: I, II or both")
	full := flag.Bool("full", false, "run the paper's full validation sets (slow)")
	out := flag.String("out", "results", "output directory for CSV files")
	deployDir := flag.String("deploy", "", "directory with deploy-*.json files to reuse (default: run deployment)")
	par := flag.Int("parallel", 0, "campaign workers: 0 = all cores, 1 = serial")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var tbs []*machine.Testbed
	switch strings.ToUpper(*testbed) {
	case "I":
		tbs = []*machine.Testbed{machine.TestbedI()}
	case "II":
		tbs = []*machine.Testbed{machine.TestbedII()}
	case "BOTH":
		tbs = machine.Testbeds()
	default:
		log.Fatalf("unknown testbed %q", *testbed)
	}

	for _, tb := range tbs {
		start := time.Now()
		c, dep := campaignFor(tb, *deployDir, !*full, *par)
		slug := strings.ReplaceAll(strings.ToLower(tb.Name), " ", "-")
		run := func(name string, fn func() error) {
			if *exp != "all" && *exp != name {
				return
			}
			fmt.Printf("=== %s on %s ===\n", name, tb.Name)
			if err := fn(); err != nil {
				log.Fatalf("%s on %s: %v", name, tb.Name, err)
			}
			fmt.Println()
		}

		run("table2", func() error {
			fmt.Print(microbench.TableII(dep))
			return nil
		})

		run("fig1", func() error {
			rows, err := c.Fig1()
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderFig1(rows))
			h, cells := eval.Fig1CSV(rows)
			return eval.WriteCSV(filepath.Join(*out, "fig1-"+slug+".csv"), h, cells)
		})

		run("fig2", func() error {
			gantt, phases, err := c.Fig2(8192, 1024, 100)
			if err != nil {
				return err
			}
			fmt.Print(gantt)
			fmt.Println("dominant engine per phase window:")
			for _, ph := range phases {
				fmt.Printf("  [%.3fs..%.3fs] %s\n", ph.Start, ph.End, ph.Dominant)
			}
			return nil
		})

		run("fig4", func() error {
			samples, err := c.Fig4()
			if err != nil {
				return err
			}
			// Level-2 extension (the paper models level-2 with Eq. 4 but
			// does not evaluate it).
			gemv, err := c.Fig4Gemv()
			if err != nil {
				return err
			}
			samples = append(samples, gemv...)
			fmt.Print(eval.RenderErrSummary("Fig. 4 (no-reuse systems): BTS vs CSO", samples))
			h, cells := eval.ErrCSV(samples)
			return eval.WriteCSV(filepath.Join(*out, "fig4-"+slug+".csv"), h, cells)
		})

		run("fig5", func() error {
			samples, err := c.Fig5()
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderErrSummary("Fig. 5 (CoCoPeLia with reuse): DR vs CSO", samples))
			h, cells := eval.ErrCSV(samples)
			return eval.WriteCSV(filepath.Join(*out, "fig5-"+slug+".csv"), h, cells)
		})

		run("fig6", func() error {
			// The paper's Fig. 6 uses Testbed II; we render it per testbed.
			for _, routine := range []string{"dgemm", "sgemm"} {
				rows, err := c.Fig6(routine)
				if err != nil {
					return err
				}
				fmt.Print(eval.RenderFig6(routine, rows))
				h, cells := eval.Fig6CSV(rows)
				if err := eval.WriteCSV(filepath.Join(*out, "fig6-"+routine+"-"+slug+".csv"), h, cells); err != nil {
					return err
				}
			}
			return nil
		})

		var gemmRows = map[string][]eval.Fig7Row{}
		run("fig7", func() error {
			for _, routine := range []string{"dgemm", "sgemm"} {
				rows, err := c.Fig7Gemm(routine)
				if err != nil {
					return err
				}
				gemmRows[routine] = rows
				fmt.Print(eval.RenderFig7(tb.Name+" "+routine, rows,
					[]eval.Lib{eval.LibCoCoPeLia, eval.LibCuBLASXt, eval.LibBLASX}))
				h, cells := eval.Fig7CSV(rows, []eval.Lib{eval.LibCoCoPeLia, eval.LibCuBLASXt, eval.LibBLASX})
				if err := eval.WriteCSV(filepath.Join(*out, "fig7-"+routine+"-"+slug+".csv"), h, cells); err != nil {
					return err
				}
			}
			rows, err := c.Fig7Daxpy()
			if err != nil {
				return err
			}
			gemmRows["daxpy"] = rows
			fmt.Print(eval.RenderFig7(tb.Name+" daxpy", rows,
				[]eval.Lib{eval.LibCoCoPeLia, eval.LibUnified}))
			h, cells := eval.Fig7CSV(rows, []eval.Lib{eval.LibCoCoPeLia, eval.LibUnified})
			return eval.WriteCSV(filepath.Join(*out, "fig7-daxpy-"+slug+".csv"), h, cells)
		})

		run("ablation", func() error {
			fmt.Print(c.AblationSlowdownFit())
			fmt.Println()
			rows, err := c.AblationReuse("dgemm")
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderAblationReuse("dgemm", rows))
			fmt.Println()
			crows, err := c.AblationContention("dgemm")
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderAblationContention("dgemm", crows))
			fmt.Println()
			samples, err := c.AblationModelVariants("dgemm")
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderErrSummary("ablation: model variants vs measured CoCoPeLia", samples))
			h, cells := eval.ErrCSV(samples)
			return eval.WriteCSV(filepath.Join(*out, "ablation-models-"+slug+".csv"), h, cells)
		})

		run("sensitivity", func() error {
			rows, err := c.Sensitivity(8192, []float64{0.125, 0.25, 0.5, 1, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			fmt.Print(eval.RenderSensitivity(tb.Name, 8192, rows))
			return nil
		})

		run("table4", func() error {
			var all []eval.Table4Row
			for _, routine := range []string{"dgemm", "sgemm"} {
				rows := gemmRows[routine]
				if rows == nil {
					var err error
					rows, err = c.Fig7Gemm(routine)
					if err != nil {
						return err
					}
				}
				all = append(all, eval.Table4(tb.Name, routine, rows)...)
			}
			drows := gemmRows["daxpy"]
			if drows == nil {
				var err error
				drows, err = c.Fig7Daxpy()
				if err != nil {
					return err
				}
			}
			all = append(all, eval.Table4(tb.Name, "daxpy", drows)...)
			fmt.Print(eval.RenderTable4(all))
			return nil
		})

		// Run summary. Timing-dependent, so it goes to stderr (log): the
		// experiment output on stdout stays byte-identical at any -parallel.
		elapsed := time.Since(start)
		hits, misses, waits := c.Runner.CacheStats()
		if c.Pool != nil {
			st := c.Pool.Stats()
			log.Printf("%s: %.2fs wall, %d workers, %d jobs, %.0f%% utilization, cache %d hits / %d misses / %d waits",
				tb.Name, elapsed.Seconds(), c.Pool.Workers(), st.Jobs,
				100*c.Pool.Utilization(elapsed), hits, misses, waits)
		} else {
			log.Printf("%s: %.2fs wall, serial, cache %d hits / %d misses / %d waits",
				tb.Name, elapsed.Seconds(), hits, misses, waits)
		}
	}
}

// campaignFor builds the campaign, reusing a saved deployment when one is
// available, and applies the -parallel worker count to both the campaign
// pool and the deployment micro-benchmarks.
func campaignFor(tb *machine.Testbed, deployDir string, fast bool, workers int) (*eval.Campaign, *microbench.Deployment) {
	if deployDir != "" {
		slug := strings.ReplaceAll(strings.ToLower(tb.Name), " ", "-")
		path := filepath.Join(deployDir, "deploy-"+slug+".json")
		if dep, err := microbench.Load(path); err == nil {
			// Diagnostics go to stderr: stdout carries only experiment
			// output, so it stays byte-identical whether or not a saved
			// deployment exists.
			log.Printf("reusing deployment %s", path)
			c := eval.NewCampaignWithDeployment(tb, dep, fast)
			c.SetParallel(workers)
			return c, dep
		}
		log.Printf("no deployment at %s; running micro-benchmarks", path)
	}
	cfg := microbench.DefaultConfig()
	cfg.Workers = workers
	dep := microbench.Run(tb, cfg)
	c := eval.NewCampaignWithDeployment(tb, dep, fast)
	c.SetParallel(workers)
	return c, dep
}
