// Command cocolint runs the project's invariant analyzers (package
// internal/analysis) over the module and reports findings as
//
//	file:line: [analyzer] message
//
// exiting non-zero when anything is found. The analyzers enforce the
// simulator's reproducibility contract: no wall-clock or global-RNG use
// outside the allowlist (determinism), no unsorted map iteration feeding
// output (maporder), stdout reserved for render layers (outputpurity), the
// layered import DAG (layering), no order-sensitive float patterns
// (floatorder), and allocation-free hot paths (hotpath; annotate roots with
// "//cocolint:hotpath"). Rules are configured declaratively in cocolint.json
// at the module root; individual findings can be suppressed with
// "//lint:ignore analyzer reason" on or directly above the offending line.
//
// Usage:
//
//	cocolint [-json] [-config FILE] [-baseline FILE] [-write-baseline]
//	         [-unused-suppressions] [packages]
//
// The package arguments accept ./... (the default, everything) or
// directory paths like ./internal/sim; they filter which packages are
// reported, while the whole module is always loaded so cross-package
// checks see the full import graph.
//
// A lint-baseline.json at the module root (or the -baseline file) records
// accepted debt: baselined findings are subtracted before reporting, matched
// by analyzer, module-relative file and message — not line, so unrelated
// edits never invalidate the baseline. -write-baseline snapshots the current
// findings into the baseline file and exits. -unused-suppressions reports
// only the stale //lint:ignore directives, for cleanup sweeps.
//
// The run summary always goes to stderr; stdout carries only the -json
// findings array, so piping into tooling stays clean.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cocopelia/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocolint: ")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	configPath := flag.String("config", "", "rule configuration file (default: cocolint.json at the module root)")
	baselinePath := flag.String("baseline", "", "accepted-findings file (default: lint-baseline.json at the module root)")
	writeBaseline := flag.Bool("write-baseline", false, "snapshot the current findings into the baseline file and exit")
	unusedOnly := flag.Bool("unused-suppressions", false, "report only //lint:ignore directives that suppress nothing")
	flag.Usage = usage
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.Load(cwd)
	if err != nil {
		fatal(err)
	}
	var cfg *analysis.Config
	if *configPath != "" {
		cfg, err = analysis.LoadConfigFile(*configPath)
	} else {
		cfg, err = analysis.LoadConfig(mod.Dir)
	}
	if err != nil {
		fatal(err)
	}

	keep, err := packageFilter(mod, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := analysis.Run(mod, cfg, analysis.All())
	if *unusedOnly {
		diags = analysis.UnusedSuppressions(diags)
	}

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(mod.Dir, analysis.BaselineFileName)
	}
	if *writeBaseline {
		var kept []analysis.Diagnostic
		for _, d := range diags {
			if keep(d.File) {
				kept = append(kept, d)
			}
		}
		if err := analysis.WriteBaseline(bpath, mod.Dir, kept); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cocolint: wrote %d finding(s) to %s\n", len(kept), relPath(cwd, bpath))
		return
	}
	baseline, err := analysis.LoadBaseline(bpath)
	if err != nil {
		fatal(err)
	}
	diags = baseline.Filter(mod.Dir, diags)

	n := 0
	var shown []analysis.Diagnostic
	for _, d := range diags {
		if !keep(d.File) {
			continue
		}
		n++
		if *jsonOut {
			d.File = relPath(cwd, d.File)
			shown = append(shown, d)
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d: [%s] %s\n", relPath(cwd, d.File), d.Line, d.Analyzer, d.Message)
	}
	if *jsonOut {
		if shown == nil {
			shown = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(shown); err != nil {
			fatal(err)
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "cocolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// packageFilter converts the command-line package patterns into a
// predicate over finding file paths. Patterns are directories relative to
// the working directory; a trailing /... includes the subtree.
func packageFilter(mod *analysis.Module, cwd string, args []string) (func(string) bool, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []struct {
		dir     string
		subtree bool
	}
	for _, a := range args {
		pat, subtree := strings.CutSuffix(a, "/...")
		if pat == "." || pat == "" {
			pat = cwd
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(cwd, pat)
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, struct {
			dir     string
			subtree bool
		}{abs, subtree})
	}
	return func(file string) bool {
		fdir := filepath.Dir(file)
		for _, d := range dirs {
			if fdir == d.dir {
				return true
			}
			if d.subtree && strings.HasPrefix(fdir, d.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}

// relPath shortens a path relative to the working directory when that
// yields something inside the tree.
func relPath(cwd, path string) string {
	rel, err := filepath.Rel(cwd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cocolint [-json] [-config FILE] [-baseline FILE] [-write-baseline] [-unused-suppressions] [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(err error) {
	log.Print(err)
	os.Exit(2)
}
