// Command cocorun executes a single BLAS routine invocation on a simulated
// testbed through any of the implemented libraries, with automatic or
// explicit tiling, and reports timing, traffic and (optionally) the engine
// timeline.
//
// Examples:
//
//	cocorun -routine dgemm -m 8192 -n 8192 -k 8192 -locs HHH
//	cocorun -routine dgemm -size 8192 -lib cublasxt -T 2048 -trace
//	cocorun -routine daxpy -n 67108864 -locs HH -lib unified
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/eval"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/libs/blasx"
	"cocopelia/internal/libs/cublasxt"
	"cocopelia/internal/libs/unified"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/predictor"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocorun: ")
	testbed := flag.String("testbed", "II", "testbed: I or II")
	routine := flag.String("routine", "dgemm", "routine: dgemm, sgemm or daxpy")
	size := flag.Int("size", 8192, "square problem size (sets m=n=k)")
	m := flag.Int("m", 0, "gemm M (overrides -size)")
	n := flag.Int("n", 0, "gemm N / daxpy length (overrides -size)")
	k := flag.Int("k", 0, "gemm K (overrides -size)")
	locs := flag.String("locs", "HHH", "operand locations, H(ost)/D(evice) per operand (gemm: ABC; daxpy: XY)")
	lib := flag.String("lib", "cocopelia", "library: cocopelia, noreuse, cublasxt, blasx, unified")
	tile := flag.Int("T", 0, "tiling size (0 = automatic for cocopelia)")
	doTrace := flag.Bool("trace", false, "print the engine timeline")
	doVerify := flag.Bool("verify", false, "cross-check the blocked GEMM payload engine against the naive oracle and report its GFLOP/s")
	traceFile := flag.String("tracefile", "", "write the timeline as a Chrome/Perfetto trace JSON to this path")
	seed := flag.Int64("seed", 42, "measurement-noise seed")
	flag.Parse()

	tb, err := machine.ByName("Testbed " + strings.ToUpper(*testbed))
	if err != nil {
		log.Fatal(err)
	}
	M, N, K := *size, *size, *size
	if *m > 0 {
		M = *m
	}
	if *n > 0 {
		N = *n
	}
	if *k > 0 {
		K = *k
	}

	locVals, err := parseLocs(*locs, *routine)
	if err != nil {
		log.Fatal(err)
	}
	p := eval.Problem{Routine: *routine, Dtype: kernelmodel.F64, M: M, N: N, K: K, Locs: locVals}
	if *routine == "sgemm" {
		p.Dtype = kernelmodel.F32
	}
	if *routine == "daxpy" {
		p.M, p.K = 0, 0
	}

	// Automatic tile selection for the CoCoPeLia library. All progress and
	// phase reporting goes to stderr; stdout carries only the run report.
	var deployDur time.Duration
	T := *tile
	if T == 0 && (*lib == "cocopelia" || *lib == "noreuse") {
		log.Printf("deploying model on %s...", tb.Name)
		deployStart := time.Now()
		dep := microbench.Run(tb, microbench.DefaultConfig())
		pred := predictor.New(dep)
		prm := p.Params()
		kind := model.DR
		if *routine == "daxpy" {
			kind = model.BTS
		}
		sel, err := pred.Select(kind, &prm)
		if err != nil {
			log.Fatalf("tile selection: %v", err)
		}
		T = sel.T
		deployDur = time.Since(deployStart)
		log.Printf("selected T=%d (%s model predicts %.4fs)", T, kind, sel.Predicted)
	}
	if T == 0 && *lib != "blasx" && *lib != "unified" {
		log.Fatal("this library needs -T")
	}

	eng := sim.New()
	dev := device.New(eng, tb, *seed, false)
	var tr *trace.Trace
	if *doTrace || *traceFile != "" {
		tr = trace.Attach(dev)
	}
	rt := cudart.New(dev)

	simStart := time.Now()
	res, err := runOnce(rt, *lib, p, T)
	if err != nil {
		log.Fatal(err)
	}
	simDur := time.Since(simStart)

	var verifyDur time.Duration
	if *doVerify {
		verifyStart := time.Now()
		verifyPayloadEngine(T)
		verifyDur = time.Since(verifyStart)
	}
	log.Printf("phase timing: deploy %.3fs, simulate %.3fs, verify %.3fs (wall clock)",
		deployDur.Seconds(), simDur.Seconds(), verifyDur.Seconds())
	fmt.Printf("\n%s %s on %s\n", *lib, p.Name(), tb.Name)
	fmt.Printf("  time       %.6f s (virtual)\n", res.Seconds)
	if *routine != "daxpy" {
		fmt.Printf("  perf       %.0f GFLOP/s\n", res.Gflops(M, N, K))
	} else {
		fmt.Printf("  perf       %.1f GB/s effective\n", float64(res.BytesH2D+res.BytesD2H)/res.Seconds/1e9)
	}
	fmt.Printf("  tile       T=%d, %d sub-kernels\n", res.T, res.Subkernels)
	fmt.Printf("  traffic    h2d %.1f MiB, d2h %.1f MiB\n",
		float64(res.BytesH2D)/(1<<20), float64(res.BytesD2H)/(1<<20))
	if tr != nil && *doTrace {
		fmt.Println()
		fmt.Print(tr.Gantt(100))
		fmt.Printf("overlap: %.0f%% of the run had >=2 engines busy\n", 100*tr.OverlapFraction())
	}
	if tr != nil && *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote Chrome/Perfetto trace to %s", *traceFile)
	}
}

// verifyPayloadEngine cross-checks the blocked GEMM payload engine (the
// arithmetic behind every backed sub-kernel) against the naive oracle at
// one tile-sized problem, requiring bitwise equality, and logs the
// engine's wall-clock GFLOP/s to stderr.
func verifyPayloadEngine(tile int) {
	n := 1024
	if tile > 0 && tile < n {
		n = tile
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n*n)
	if err := blas.GemmNaive(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, want, n); err != nil {
		log.Fatalf("verify: oracle: %v", err)
	}
	got := make([]float64, n*n)
	start := time.Now()
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, got, n); err != nil {
		log.Fatalf("verify: payload engine: %v", err)
	}
	elapsed := time.Since(start)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			log.Fatalf("verify: payload engine differs from oracle at element %d: %v != %v",
				i, got[i], want[i])
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	log.Printf("verify: payload engine bitwise-matches oracle at n=%d (%.2f GFLOP/s)",
		n, flops/elapsed.Seconds()/1e9)
}

func parseLocs(s, routine string) ([]model.Loc, error) {
	want := 3
	if routine == "daxpy" {
		want = 2
	}
	if len(s) != want {
		return nil, fmt.Errorf("-locs needs %d characters for %s", want, routine)
	}
	out := make([]model.Loc, want)
	for i, ch := range strings.ToUpper(s) {
		switch ch {
		case 'H':
			out[i] = model.OnHost
		case 'D':
			out[i] = model.OnDevice
		default:
			return nil, fmt.Errorf("bad location %q (want H or D)", ch)
		}
	}
	return out, nil
}

// runOnce mirrors the eval runner but on a caller-supplied runtime so the
// trace attaches to the same device.
func runOnce(rt *cudart.Runtime, lib string, p eval.Problem, T int) (operand.Result, error) {
	if p.Routine == "daxpy" {
		x, y := vec(rt, p, 0), vec(rt, p, 1)
		switch lib {
		case "cocopelia":
			return sched.NewContext(rt, false).Axpy(sched.AxpyOpts{N: p.N, Alpha: 1.1, X: x, Y: y, T: T})
		case "unified":
			return unified.Daxpy(rt, p.N, 1.1, x, y, false)
		}
		return operand.Result{}, fmt.Errorf("library %s has no daxpy", lib)
	}
	a, b, c := mat(rt, p, 0, p.M, p.K), mat(rt, p, 1, p.K, p.N), mat(rt, p, 2, p.M, p.N)
	switch lib {
	case "cocopelia":
		return sched.NewContext(rt, false).Gemm(sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K, Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T})
	case "noreuse":
		return sched.NewContext(rt, false).GemmNoReuse(sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K, Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T})
	case "cublasxt":
		return cublasxt.New(rt, 0, false).Gemm(cublasxt.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K, Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T})
	case "blasx":
		return blasx.New(rt, false).Gemm(blasx.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K, Alpha: 1, Beta: 1, A: a, B: b, C: c})
	}
	return operand.Result{}, fmt.Errorf("unknown library %s", lib)
}

func mat(rt *cudart.Runtime, p eval.Problem, op, rows, cols int) *operand.Matrix {
	if p.Locs[op] == model.OnHost {
		return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}
	}
	buf, err := rt.Malloc(p.Dtype, int64(rows)*int64(cols), false)
	if err != nil {
		log.Fatal(err)
	}
	return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}
}

func vec(rt *cudart.Runtime, p eval.Problem, op int) *operand.Vector {
	if p.Locs[op] == model.OnHost {
		return &operand.Vector{N: p.N, Loc: model.OnHost}
	}
	buf, err := rt.Malloc(kernelmodel.F64, int64(p.N), false)
	if err != nil {
		log.Fatal(err)
	}
	return &operand.Vector{N: p.N, Loc: model.OnDevice, Dev: buf}
}
