// Command cocomodel queries the CoCoPeLia prediction models directly: it
// prints every model's predicted offload time across the feasible tiling
// sizes for one problem, marks each model's arg-min selection, and shows
// the measured execution for reference.
//
// Examples:
//
//	cocomodel -routine dgemm -size 8192
//	cocomodel -routine dgemm -m 26112 -n 26112 -k 6656 -locs HHH -testbed I
//	cocomodel -routine daxpy -n 67108864 -locs HH
//
// -parallel N fans the deployment micro-benchmarks and the measured
// column across N workers (0 = all cores, 1 = serial); output is
// identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/eval"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
	"cocopelia/internal/plan"
	"cocopelia/internal/predictor"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocomodel: ")
	testbed := flag.String("testbed", "II", "testbed: I or II")
	routine := flag.String("routine", "dgemm", "routine: dgemm, sgemm, daxpy, or (with -dump-plan) dpotrf, dgetrf, dtrsm")
	size := flag.Int("size", 8192, "square problem size (sets m=n=k)")
	m := flag.Int("m", 0, "gemm M (overrides -size)")
	n := flag.Int("n", 0, "gemm N / daxpy length (overrides -size)")
	k := flag.Int("k", 0, "gemm K (overrides -size)")
	locs := flag.String("locs", "HHH", "operand locations (gemm: ABC; daxpy: XY)")
	measure := flag.Bool("measure", true, "also run the simulated execution per tile")
	extended := flag.Bool("extended", false, "include the Werkhoven/ablation model variants")
	coarsen := flag.Int("coarsen", 4, "tile grid subsampling factor")
	par := flag.Int("parallel", 0, "simulation workers: 0 = all cores, 1 = serial")
	dumpPlan := flag.Int("dump-plan", 0, "print the tile plan for this tiling size and exit (no deployment)")
	flag.Parse()

	tb, err := machine.ByName("Testbed " + strings.ToUpper(*testbed))
	if err != nil {
		log.Fatal(err)
	}
	M, N, K := *size, *size, *size
	if *m > 0 {
		M = *m
	}
	if *n > 0 {
		N = *n
	}
	if *k > 0 {
		K = *k
	}

	p := eval.Problem{Routine: *routine, Dtype: kernelmodel.F64, M: M, N: N, K: K}
	if *routine == "sgemm" {
		p.Dtype = kernelmodel.F32
	}
	want := 3
	switch *routine {
	case "daxpy":
		want = 2
		p.M, p.K = 0, 0
	case "dpotrf", "dgetrf":
		// Square factorization: one operand, M follows N.
		want = 1
		p.M, p.K = p.N, 0
	case "dtrsm":
		// Triangular solve: A (M x M) and B (M x N).
		want = 2
		p.K = 0
	}
	if len(*locs) == 3 && want < 3 && *locs == "HHH" {
		// The default flag value; shrink it rather than demanding -locs for
		// the all-host case.
		*locs = "HHH"[:want]
	}
	if len(*locs) != want {
		log.Fatalf("-locs needs %d characters for %s", want, *routine)
	}
	for _, ch := range strings.ToUpper(*locs) {
		switch ch {
		case 'H':
			p.Locs = append(p.Locs, model.OnHost)
		case 'D':
			p.Locs = append(p.Locs, model.OnDevice)
		default:
			log.Fatalf("bad location %q", ch)
		}
	}

	if *dumpPlan > 0 {
		if err := dumpPlanText(tb, p, *dumpPlan); err != nil {
			log.Fatal(err)
		}
		return
	}
	switch *routine {
	case "dpotrf", "dgetrf", "dtrsm":
		log.Fatalf("%s supports -dump-plan only (the prediction table covers the benchmarked routines)", *routine)
	}

	// Progress goes to stderr so stdout carries only the prediction table.
	log.Printf("deploying on %s...", tb.Name)
	cfg := microbench.DefaultConfig()
	cfg.Workers = *par
	dep := microbench.Run(tb, cfg)
	pred := predictor.New(dep)
	runner := eval.NewRunner(tb)
	runner.Reps = 1

	prm := p.Params()
	sm, err := pred.SubModels(p.Routine, runner.FullKernelTime(p))
	if err != nil {
		log.Fatal(err)
	}

	kinds := model.Kinds()
	if *extended {
		kinds = append(kinds,
			model.WerkSerial, model.Werk2Way, model.Werk1Engine,
			model.AblBTSUnidir, model.AblDRInteger)
	}

	grid := microbench.GemmTileGrid()
	if *routine == "daxpy" {
		grid = microbench.AxpyTileGrid()
	}
	tiles := eval.SweepTiles(p, grid, *coarsen)
	if len(tiles) == 0 {
		log.Fatalf("no feasible tiles for %s", p.Name())
	}

	// Prefetch the measured column through the pool; the table below then
	// assembles from the warm cache in tile order.
	if *measure {
		cells := make([]eval.MeasureCell, len(tiles))
		for i, T := range tiles {
			cells[i] = eval.MeasureCell{Lib: eval.LibCoCoPeLia, P: p, T: T}
		}
		if err := runner.MeasureBatch(parallel.NewPool(*par), cells); err != nil {
			log.Fatal(err)
		}
	}

	// Header.
	fmt.Printf("\n%s on %s\n", p.Name(), tb.Name)
	fmt.Printf("%8s", "T")
	for _, kind := range kinds {
		fmt.Printf(" %12s", kind)
	}
	if *measure {
		fmt.Printf(" %12s", "measured")
	}
	fmt.Println()

	best := map[model.Kind]struct {
		T int
		v float64
	}{}
	for _, T := range tiles {
		fmt.Printf("%8d", T)
		for _, kind := range kinds {
			v, err := model.PredictExtended(kind, &prm, sm, T)
			if err != nil {
				fmt.Printf(" %12s", "-")
				continue
			}
			fmt.Printf(" %12.5f", v)
			if b, ok := best[kind]; !ok || v < b.v {
				best[kind] = struct {
					T int
					v float64
				}{T, v}
			}
		}
		if *measure {
			lib := eval.LibCoCoPeLia
			res, err := runner.Measure(lib, p, T)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.5f", res.Seconds)
		}
		fmt.Println()
	}

	fmt.Println("\narg-min selections:")
	for _, kind := range kinds {
		if b, ok := best[kind]; ok {
			fmt.Printf("  %-14s T=%-6d predicted %.5fs\n", kind, b.T, b.v)
		}
	}
}

// dumpPlanText builds the CoCoPeLia tile plan for the problem at tiling
// size T and prints its deterministic text form. Only the planner runs —
// no micro-benchmark deployment, no simulation — so the output is exactly
// what the scheduler would replay.
func dumpPlanText(tb *machine.Testbed, p eval.Problem, T int) error {
	rt := cudart.New(device.New(sim.New(), tb, 1, false))
	ctx := sched.NewContext(rt, false)
	var pl *plan.Plan
	var err error
	mat := func(rows, cols int, loc model.Loc) (*operand.Matrix, error) {
		if loc == model.OnHost {
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}, nil
		}
		buf, err := rt.Malloc(p.Dtype, int64(rows)*int64(cols), false)
		if err != nil {
			return nil, err
		}
		return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}, nil
	}
	switch p.Routine {
	case "dpotrf", "dgetrf":
		var a *operand.Matrix
		if a, err = mat(p.N, p.N, p.Locs[0]); err != nil {
			return err
		}
		if p.Routine == "dpotrf" {
			pl, err = ctx.PlanCholesky(sched.CholeskyOpts{Dtype: p.Dtype, N: p.N, A: a, T: T})
		} else {
			pl, err = ctx.PlanLU(sched.LUOpts{Dtype: p.Dtype, N: p.N, A: a, T: T})
		}
		if err != nil {
			return err
		}
		fmt.Print(pl.Dump())
		return nil
	case "dtrsm":
		var a, b *operand.Matrix
		if a, err = mat(p.M, p.M, p.Locs[0]); err != nil {
			return err
		}
		if b, err = mat(p.M, p.N, p.Locs[1]); err != nil {
			return err
		}
		pl, err = ctx.PlanTrsm(sched.TrsmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, Alpha: 1, A: a, B: b, T: T,
		})
		if err != nil {
			return err
		}
		fmt.Print(pl.Dump())
		return nil
	}
	if p.Routine == "daxpy" {
		vec := func(loc model.Loc) (*operand.Vector, error) {
			if loc == model.OnHost {
				return &operand.Vector{N: p.N, Loc: model.OnHost}, nil
			}
			buf, err := rt.Malloc(kernelmodel.F64, int64(p.N), false)
			if err != nil {
				return nil, err
			}
			return &operand.Vector{N: p.N, Loc: model.OnDevice, Dev: buf}, nil
		}
		var x, y *operand.Vector
		if x, err = vec(p.Locs[0]); err != nil {
			return err
		}
		if y, err = vec(p.Locs[1]); err != nil {
			return err
		}
		pl, err = ctx.PlanAxpy(sched.AxpyOpts{N: p.N, Alpha: 1, X: x, Y: y, T: T})
	} else {
		var a, b, c *operand.Matrix
		if a, err = mat(p.M, p.K, p.Locs[0]); err != nil {
			return err
		}
		if b, err = mat(p.K, p.N, p.Locs[1]); err != nil {
			return err
		}
		if c, err = mat(p.M, p.N, p.Locs[2]); err != nil {
			return err
		}
		pl, err = ctx.PlanGemm(sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
	}
	if err != nil {
		return err
	}
	fmt.Print(pl.Dump())
	return nil
}
