// Command cocobench measures the two wall-clock throughput surfaces of the
// simulator itself (not the simulated-GPU numbers the eval pipeline
// produces):
//
//   - the host BLAS payload engine (the blocked, packed GEMM of
//     internal/blas) against the naive reference loop, as GFLOP/s per
//     (routine, size) — this bounds functional-verification turnaround;
//   - with -campaign, the discrete-event campaign pipeline itself, as
//     cells/sec and events/sec over a timing-only measurement sweep —
//     this bounds how fast tables and figures regenerate.
//
// Examples:
//
//	cocobench                              # default sizes, results/bench-blas.json
//	cocobench -sizes 256,512 -reps 5
//	cocobench -smoke                       # one tiny size, sanity + CI smoke
//	cocobench -campaign                    # DES sweep, results/bench-campaign.json
//	cocobench -campaign -cpuprofile results/campaign.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cocopelia/internal/blas"
	"cocopelia/internal/eval"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/parallel"
)

// entry is one benchmark measurement in the output JSON.
type entry struct {
	Routine string  `json:"routine"`
	Size    int     `json:"size"`
	Workers int     `json:"workers"`
	Reps    int     `json:"reps"`
	Seconds float64 `json:"seconds"` // best-of-reps wall time per call
	Gflops  float64 `json:"gflops"`
}

type report struct {
	Arch    string  `json:"arch"`
	Maxproc int     `json:"maxprocs"`
	Entries []entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocobench: ")
	out := flag.String("out", "", "output JSON path (default per mode under results/)")
	sizesFlag := flag.String("sizes", "256,512,1024,2048", "comma-separated square GEMM sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	smoke := flag.Bool("smoke", false, "tiny work-list, for CI sanity")
	campaign := flag.Bool("campaign", false, "benchmark the DES campaign pipeline (cells/sec) instead of the BLAS payload engine")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured section to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *campaign {
		if *out == "" {
			*out = filepath.Join("results", "bench-campaign.json")
		}
		if err := runCampaign(*out, *smoke); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *out == "" {
		*out = filepath.Join("results", "bench-blas.json")
	}

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *smoke {
		sizes = []int{128}
	}

	workers := runtime.GOMAXPROCS(0)
	pool := parallel.NewPool(workers)
	rep := report{Arch: runtime.GOARCH, Maxproc: workers}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(7))
		a := randMat(rng, n)
		b := randMat(rng, n)
		c := make([]float64, n*n)
		a32, b32 := toF32(a), toF32(b)
		c32 := make([]float32, n*n)

		runs := []struct {
			routine string
			workers int
			call    func() error
		}{
			{"dgemm-naive", 1, func() error {
				return blas.GemmNaive(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm", 1, func() error {
				return blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm-parallel", workers, func() error {
				return blas.GemmParallel(pool, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"sgemm", 1, func() error {
				return blas.Sgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a32, n, b32, n, 0, c32, n)
			}},
		}
		for _, r := range runs {
			e, err := measure(r.routine, n, r.workers, *reps, r.call)
			if err != nil {
				log.Fatalf("%s n=%d: %v", r.routine, n, err)
			}
			log.Printf("%-14s n=%-5d workers=%-2d %8.1f ms  %7.2f GFLOP/s",
				e.Routine, e.Size, e.Workers, e.Seconds*1e3, e.Gflops)
			rep.Entries = append(rep.Entries, e)
		}
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d entries)", *out, len(rep.Entries))
}

// campaignReport is the JSON schema of results/bench-campaign.json: the
// single-worker throughput of the discrete-event campaign pipeline on a
// timing-only sweep, in measurement cells per second and simulation events
// per second.
type campaignReport struct {
	Testbed      string  `json:"testbed"`
	Workers      int     `json:"workers"`
	Reps         int     `json:"reps"`
	Cells        int     `json:"cells"`
	Events       int64   `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Plan-cache counters: how many tile plans the runner built (misses)
	// versus replayed from the memo (hits) across the sweep.
	PlanHits    int     `json:"plan_hits"`
	PlanMisses  int     `json:"plan_misses"`
	PlanHitRate float64 `json:"plan_hit_rate"`
}

// campaignCells builds the benchmark's timing-only work-list: a tile-size
// sweep of every level-3 library over square dgemm problems across the
// host/device location combinations, plus a CoCoPeLia daxpy sweep — the
// same cell shapes the Fig. 4-7 campaigns are made of, scaled to run in
// seconds rather than minutes.
func campaignCells(smoke bool) []eval.MeasureCell {
	sizes := []int{2048, 4096, 8192}
	tiles := map[int][]int{
		2048: {256, 512, 1024},
		4096: {256, 512, 1024, 2048},
		8192: {256, 512, 1024, 2048},
	}
	if smoke {
		sizes = []int{512}
		tiles = map[int][]int{512: {128, 256}}
	}
	combos := [][]model.Loc{
		{model.OnHost, model.OnHost, model.OnHost},
		{model.OnDevice, model.OnHost, model.OnHost},
		{model.OnDevice, model.OnDevice, model.OnHost},
	}
	libs := []eval.Lib{eval.LibCoCoPeLia, eval.LibNoReuse, eval.LibCuBLASXt}
	if smoke {
		libs = []eval.Lib{eval.LibCoCoPeLia}
	}
	var cells []eval.MeasureCell
	for _, s := range sizes {
		for _, locs := range combos {
			p := eval.Problem{
				Routine: "dgemm", Dtype: kernelmodel.F64, M: s, N: s, K: s,
				Locs: append([]model.Loc(nil), locs...), Tag: "square",
			}
			for _, lib := range libs {
				for _, T := range tiles[s] {
					cells = append(cells, eval.MeasureCell{Lib: lib, P: p, T: T})
				}
			}
			if !smoke {
				cells = append(cells, eval.MeasureCell{Lib: eval.LibBLASX, P: p, T: 0})
			}
		}
	}
	if !smoke {
		for _, locs := range model.LocCombos(2) {
			p := eval.Problem{
				Routine: "daxpy", Dtype: kernelmodel.F64, N: 32 << 20,
				Locs: append([]model.Loc(nil), locs...), Tag: "vector",
			}
			for _, T := range []int{1 << 20, 4 << 20} {
				cells = append(cells, eval.MeasureCell{Lib: eval.LibCoCoPeLia, P: p, T: T})
			}
		}
	}
	return cells
}

// runCampaign measures the single-worker throughput of the DES campaign
// pipeline on a cold runner and writes the report JSON.
func runCampaign(out string, smoke bool) error {
	tb := machine.TestbedI()
	cells := campaignCells(smoke)
	r := eval.NewRunner(tb)

	start := time.Now()
	if err := r.MeasureBatch(nil, cells); err != nil {
		return err
	}
	wall := time.Since(start).Seconds()

	events := r.EventsProcessed()
	planHits, planMisses := r.PlanCacheStats()
	rep := campaignReport{
		Testbed:      tb.Name,
		Workers:      1,
		Reps:         r.Reps,
		Cells:        len(cells),
		Events:       events,
		WallSeconds:  wall,
		CellsPerSec:  float64(len(cells)) / wall,
		EventsPerSec: float64(events) / wall,
		PlanHits:     planHits,
		PlanMisses:   planMisses,
	}
	if total := planHits + planMisses; total > 0 {
		rep.PlanHitRate = float64(planHits) / float64(total)
	}
	log.Printf("campaign: %d cells, %d events in %.2fs  (%.1f cells/s, %.3g events/s)",
		rep.Cells, rep.Events, rep.WallSeconds, rep.CellsPerSec, rep.EventsPerSec)
	log.Printf("campaign: plan cache %d hits / %d misses (%.0f%% hit rate)",
		rep.PlanHits, rep.PlanMisses, 100*rep.PlanHitRate)
	if err := writeJSON(out, &rep); err != nil {
		return err
	}
	log.Printf("wrote %s", out)
	return nil
}

// writeJSON marshals v indented and writes it to path, creating the
// directory when needed.
func writeJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." && dir != "/" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measure times call (after one warm-up) and keeps the best of reps.
func measure(routine string, n, workers, reps int, call func() error) (entry, error) {
	if err := call(); err != nil {
		return entry{}, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := call(); err != nil {
			return entry{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	sec := best.Seconds()
	flops := 2 * float64(n) * float64(n) * float64(n)
	return entry{Routine: routine, Size: n, Workers: workers, Reps: reps,
		Seconds: sec, Gflops: flops / sec / 1e9}, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func toF32(x []float64) []float32 {
	y := make([]float32, len(x))
	for i, v := range x {
		y[i] = float32(v)
	}
	return y
}
