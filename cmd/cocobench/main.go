// Command cocobench measures the host BLAS payload engine (the blocked,
// packed GEMM of internal/blas) against the naive reference loop and
// writes GFLOP/s per (routine, size) as JSON, by default under results/.
//
// These are real wall-clock measurements of the functional-verification
// arithmetic, not the simulated-GPU numbers the eval pipeline produces:
// they answer "how fast does the simulator's own math run", which bounds
// campaign turnaround time.
//
// Examples:
//
//	cocobench                              # default sizes, results/bench-blas.json
//	cocobench -sizes 256,512 -reps 5
//	cocobench -smoke                       # one tiny size, sanity + CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cocopelia/internal/blas"
	"cocopelia/internal/parallel"
)

// entry is one benchmark measurement in the output JSON.
type entry struct {
	Routine string  `json:"routine"`
	Size    int     `json:"size"`
	Workers int     `json:"workers"`
	Reps    int     `json:"reps"`
	Seconds float64 `json:"seconds"` // best-of-reps wall time per call
	Gflops  float64 `json:"gflops"`
}

type report struct {
	Arch    string  `json:"arch"`
	Maxproc int     `json:"maxprocs"`
	Entries []entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocobench: ")
	out := flag.String("out", filepath.Join("results", "bench-blas.json"), "output JSON path")
	sizesFlag := flag.String("sizes", "256,512,1024,2048", "comma-separated square GEMM sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	smoke := flag.Bool("smoke", false, "single tiny size, for CI sanity")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *smoke {
		sizes = []int{128}
	}

	workers := runtime.GOMAXPROCS(0)
	pool := parallel.NewPool(workers)
	rep := report{Arch: runtime.GOARCH, Maxproc: workers}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(7))
		a := randMat(rng, n)
		b := randMat(rng, n)
		c := make([]float64, n*n)
		a32, b32 := toF32(a), toF32(b)
		c32 := make([]float32, n*n)

		runs := []struct {
			routine string
			workers int
			call    func() error
		}{
			{"dgemm-naive", 1, func() error {
				return blas.GemmNaive(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm", 1, func() error {
				return blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm-parallel", workers, func() error {
				return blas.GemmParallel(pool, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"sgemm", 1, func() error {
				return blas.Sgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a32, n, b32, n, 0, c32, n)
			}},
		}
		for _, r := range runs {
			e, err := measure(r.routine, n, r.workers, *reps, r.call)
			if err != nil {
				log.Fatalf("%s n=%d: %v", r.routine, n, err)
			}
			log.Printf("%-14s n=%-5d workers=%-2d %8.1f ms  %7.2f GFLOP/s",
				e.Routine, e.Size, e.Workers, e.Seconds*1e3, e.Gflops)
			rep.Entries = append(rep.Entries, e)
		}
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d entries)", *out, len(rep.Entries))
}

// measure times call (after one warm-up) and keeps the best of reps.
func measure(routine string, n, workers, reps int, call func() error) (entry, error) {
	if err := call(); err != nil {
		return entry{}, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := call(); err != nil {
			return entry{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	sec := best.Seconds()
	flops := 2 * float64(n) * float64(n) * float64(n)
	return entry{Routine: routine, Size: n, Workers: workers, Reps: reps,
		Seconds: sec, Gflops: flops / sec / 1e9}, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func toF32(x []float64) []float32 {
	y := make([]float32, len(x))
	for i, v := range x {
		y[i] = float32(v)
	}
	return y
}
