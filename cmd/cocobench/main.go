// Command cocobench measures the two wall-clock throughput surfaces of the
// simulator itself (not the simulated-GPU numbers the eval pipeline
// produces):
//
//   - the host BLAS payload engine (the blocked, packed GEMM of
//     internal/blas) against the naive reference loop, as GFLOP/s per
//     (routine, size) — this bounds functional-verification turnaround;
//   - with -campaign, the discrete-event campaign pipeline itself, as
//     cells/sec and events/sec over a timing-only measurement sweep —
//     this bounds how fast tables and figures regenerate;
//   - with -factor, the tiled factorization planners (cholesky, lu, trsm)
//     over the task-graph IR, recording each cell's simulated makespan and
//     traffic — the committed baseline pins the new planners' schedules
//     exactly, the way the campaign baseline pins the flat gemm plans.
//
// Examples:
//
//	cocobench                              # default sizes, results/bench-blas.json
//	cocobench -sizes 256,512 -reps 5
//	cocobench -smoke                       # one tiny size, sanity + CI smoke
//	cocobench -campaign                    # DES sweep, results/bench-campaign.json
//	cocobench -campaign -cpuprofile results/campaign.pprof
//	cocobench -factor                      # results/bench-factor.json
//	cocobench -factor -check results/bench-factor.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cocopelia/internal/blas"
	"cocopelia/internal/eval"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/parallel"
)

// entry is one benchmark measurement in the output JSON. Kernel names the
// micro-kernel variant that actually ran (naive, generic, avx, fma-avx2,
// neon — see internal/blas/registry.go), so a committed baseline records
// which numerics produced its numbers.
type entry struct {
	Routine string  `json:"routine"`
	Dtype   string  `json:"dtype"`
	Kernel  string  `json:"kernel"`
	Size    int     `json:"size"`
	Workers int     `json:"workers"`
	Reps    int     `json:"reps"`
	Seconds float64 `json:"seconds"` // best-of-reps wall time per call
	Gflops  float64 `json:"gflops"`
}

type report struct {
	Arch    string  `json:"arch"`
	Maxproc int     `json:"maxprocs"`
	Entries []entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cocobench: ")
	out := flag.String("out", "", "output JSON path (default per mode under results/)")
	sizesFlag := flag.String("sizes", "256,512,1024,2048", "comma-separated square GEMM sizes")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	smoke := flag.Bool("smoke", false, "tiny work-list, for CI sanity")
	campaign := flag.Bool("campaign", false, "benchmark the DES campaign pipeline (cells/sec) instead of the BLAS payload engine")
	factor := flag.Bool("factor", false, "sweep the tiled factorization planners (cholesky/lu/trsm) and record their simulated outcomes")
	passes := flag.Int("passes", 3, "campaign passes per measured row (fresh runner each, fastest pass kept)")
	check := flag.String("check", "", "compare against this committed baseline JSON and fail on regression (campaign reference row, or BLAS GFLOP/s per routine and size)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured section to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path")
	flag.Parse()

	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *campaign {
		if *out == "" {
			*out = filepath.Join("results", "bench-campaign.json")
		}
		if err := runCampaign(*out, *smoke, *passes, *check); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *factor {
		if *out == "" {
			*out = filepath.Join("results", "bench-factor.json")
		}
		if err := runFactor(*out, *smoke, *check); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *out == "" {
		*out = filepath.Join("results", "bench-blas.json")
	}

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *smoke {
		sizes = []int{128}
	}

	if err := runBlas(*out, sizes, *reps, *check); err != nil {
		log.Fatal(err)
	}
}

// runBlas measures the dtype x kernel-variant sweep of the payload engine
// and either writes the report or, with checkPath set, gates it against a
// committed baseline instead.
func runBlas(out string, sizes []int, reps int, checkPath string) error {
	workers := runtime.GOMAXPROCS(0)
	pool := parallel.NewPool(workers)
	exact64, err := blas.SelectedKernel[float64](blas.KernelExact)
	if err != nil {
		return err
	}
	fma64, err := blas.SelectedKernel[float64](blas.KernelFMA)
	if err != nil {
		return err
	}
	exact32, err := blas.SelectedKernel[float32](blas.KernelExact)
	if err != nil {
		return err
	}
	fma32, err := blas.SelectedKernel[float32](blas.KernelFMA)
	if err != nil {
		return err
	}
	rep := report{Arch: runtime.GOARCH, Maxproc: workers}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(7))
		a := randMat(rng, n)
		b := randMat(rng, n)
		c := make([]float64, n*n)
		a32, b32 := toF32(a), toF32(b)
		c32 := make([]float32, n*n)

		runs := []struct {
			routine string
			dtype   string
			kernel  string
			workers int
			call    func() error
		}{
			{"dgemm-naive", "f64", "naive", 1, func() error {
				return blas.GemmNaive(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm", "f64", exact64, 1, func() error {
				return blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm-fma", "f64", fma64, 1, func() error {
				return blas.GemmPolicy(blas.KernelFMA, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"dgemm-parallel", "f64", exact64, workers, func() error {
				return blas.GemmParallel(pool, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			}},
			{"sgemm", "f32", exact32, 1, func() error {
				return blas.Sgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a32, n, b32, n, 0, c32, n)
			}},
			{"sgemm-fma", "f32", fma32, 1, func() error {
				return blas.GemmPolicy(blas.KernelFMA, blas.NoTrans, blas.NoTrans, n, n, n, 1, a32, n, b32, n, 0, c32, n)
			}},
		}
		for _, r := range runs {
			e, err := measure(r.routine, n, r.workers, reps, r.call)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", r.routine, n, err)
			}
			e.Dtype, e.Kernel = r.dtype, r.kernel
			log.Printf("%-14s n=%-5d kernel=%-9s workers=%-2d %8.1f ms  %7.2f GFLOP/s",
				e.Routine, e.Size, e.Kernel, e.Workers, e.Seconds*1e3, e.Gflops)
			rep.Entries = append(rep.Entries, e)
		}
	}

	if checkPath != "" {
		return checkBlas(checkPath, &rep)
	}
	if err := writeJSON(out, &rep); err != nil {
		return err
	}
	log.Printf("wrote %s (%d entries)", out, len(rep.Entries))
	return nil
}

// checkBlas gates a fresh BLAS sweep against the committed baseline: every
// measured (routine, size) present in both reports must reach at least 85%
// of the baseline GFLOP/s. Rows only one side measured (a new variant, or
// a size the check run skipped) pass vacuously.
func checkBlas(path string, rep *report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseOf := make(map[string]entry, len(base.Entries))
	for _, e := range base.Entries {
		baseOf[fmt.Sprintf("%s/%d", e.Routine, e.Size)] = e
	}
	checked := 0
	for _, e := range rep.Entries {
		b, ok := baseOf[fmt.Sprintf("%s/%d", e.Routine, e.Size)]
		if !ok {
			continue
		}
		checked++
		if floor := 0.85 * b.Gflops; e.Gflops < floor {
			return fmt.Errorf("%s n=%d regressed: %.2f GFLOP/s < %.2f (85%% of baseline %.2f, kernel %s vs %s)",
				e.Routine, e.Size, e.Gflops, floor, b.Gflops, e.Kernel, b.Kernel)
		}
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s shares no (routine, size) rows with this run", path)
	}
	log.Printf("blas check OK: %d rows within 85%% of baseline %s", checked, path)
	return nil
}

// campaignPhases splits a row's wall time by pipeline phase: plan builds
// (cache misses), plan replay onto the streams, event-queue advance, and
// everything else (operand setup plus the comparator libraries that run to
// completion internally). It makes a throughput change attributable — a
// replay optimization must show up in enqueue, a DES optimization in
// advance.
type campaignPhases struct {
	PlanBuild float64 `json:"plan_build"`
	Enqueue   float64 `json:"enqueue"`
	Advance   float64 `json:"advance"`
	Other     float64 `json:"other"`
}

// campaignRow is one measured configuration of the campaign pipeline. The
// simulated outcome — events, plan hits/misses/evictions — must be
// identical across every row of a report (asserted at run time); only the
// wall-clock numbers may differ.
type campaignRow struct {
	Workers       int             `json:"workers"`
	IntraCell     bool            `json:"intra_cell"`
	Passes        int             `json:"passes"`
	Cells         int             `json:"cells"`
	Events        int64           `json:"events"`
	WallSeconds   float64         `json:"wall_seconds"`
	CellsPerSec   float64         `json:"cells_per_sec"`
	EventsPerSec  float64         `json:"events_per_sec"`
	PlanHits      int             `json:"plan_hits"`
	PlanMisses    int             `json:"plan_misses"`
	PlanEvictions int             `json:"plan_evictions"`
	PlanHitRate   float64         `json:"plan_hit_rate"`
	Phases        *campaignPhases `json:"phase_seconds,omitempty"`
}

// campaignReport is the JSON schema of results/bench-campaign.json.
// Reference is the committed-baseline configuration (single worker,
// sequential engine, per-phase timing); Sweep varies workers and the
// intra-cell engine over the same work-list; Normalized demonstrates
// geometry-normalized plan keys on a mirror-symmetric work-list (its hit
// rate exceeds the reference work-list's 2/3 because mirrored cells share
// one canonical plan).
type campaignReport struct {
	Testbed    string        `json:"testbed"`
	GOGC       int           `json:"gogc"`
	Reps       int           `json:"reps"`
	Reference  campaignRow   `json:"reference"`
	Sweep      []campaignRow `json:"sweep"`
	Normalized *campaignRow  `json:"normalized,omitempty"`
}

// campaignCells builds the benchmark's timing-only work-list: a tile-size
// sweep of every level-3 library over square dgemm problems across the
// host/device location combinations, plus a CoCoPeLia daxpy sweep — the
// same cell shapes the Fig. 4-7 campaigns are made of, scaled to run in
// seconds rather than minutes.
func campaignCells(smoke bool) []eval.MeasureCell {
	sizes := []int{2048, 4096, 8192}
	tiles := map[int][]int{
		2048: {256, 512, 1024},
		4096: {256, 512, 1024, 2048},
		8192: {256, 512, 1024, 2048},
	}
	if smoke {
		sizes = []int{512}
		tiles = map[int][]int{512: {128, 256}}
	}
	combos := [][]model.Loc{
		{model.OnHost, model.OnHost, model.OnHost},
		{model.OnDevice, model.OnHost, model.OnHost},
		{model.OnDevice, model.OnDevice, model.OnHost},
	}
	libs := []eval.Lib{eval.LibCoCoPeLia, eval.LibNoReuse, eval.LibCuBLASXt}
	if smoke {
		libs = []eval.Lib{eval.LibCoCoPeLia}
	}
	var cells []eval.MeasureCell
	for _, s := range sizes {
		for _, locs := range combos {
			p := eval.Problem{
				Routine: "dgemm", Dtype: kernelmodel.F64, M: s, N: s, K: s,
				Locs: append([]model.Loc(nil), locs...), Tag: "square",
			}
			for _, lib := range libs {
				for _, T := range tiles[s] {
					cells = append(cells, eval.MeasureCell{Lib: lib, P: p, T: T})
				}
			}
			if !smoke {
				cells = append(cells, eval.MeasureCell{Lib: eval.LibBLASX, P: p, T: 0})
			}
		}
	}
	if !smoke {
		for _, locs := range model.LocCombos(2) {
			p := eval.Problem{
				Routine: "daxpy", Dtype: kernelmodel.F64, N: 32 << 20,
				Locs: append([]model.Loc(nil), locs...), Tag: "vector",
			}
			for _, T := range []int{1 << 20, 4 << 20} {
				cells = append(cells, eval.MeasureCell{Lib: eval.LibCoCoPeLia, P: p, T: T})
			}
		}
	}
	return cells
}

// campaignGOGC is the garbage-collection target percentage pinned for the
// campaign benchmark. The campaign's live heap is dominated by long-lived
// warm state (plan cache, tapes, op/event free lists) that the default
// GOGC=100 re-marks many times per second on a single P; pinning a high
// target makes the measurement reflect simulation throughput rather than
// ambient GC policy, keeps runs comparable across environments, and bounds
// the peak heap at a few hundred MB. This is the BETWEEN-rows policy;
// inside a timed row collection is disabled outright and deferred to the
// row boundary (see runRow).
const campaignGOGC = 800

// campaignPlanBudget sizes each campaign runner's plan cache to hold the
// entire sweep's plans (~1.1M ops ≈ 100MB; the default eval budget keeps
// only the working set). With eviction off the singleflight hit/miss
// split is a pure function of the work-list — eviction would reintroduce
// execution-order dependence and break the cross-worker counter pin.
const campaignPlanBudget = 1 << 22

// normalizedCells builds the mirror-symmetric demo work-list: rectangular
// gemm cells paired with their transpose mirrors (M and N exchanged, A and
// B locations exchanged). With NormalizeKeys both orientations fold onto
// one canonical plan — 1 miss and 5 hits per pair at 3 reps (83% hit rate)
// instead of the 2/3 a distinct-shape work-list is capped at.
func normalizedCells(smoke bool) []eval.MeasureCell {
	type shape struct{ m, n, k int }
	shapes := []shape{{4096, 2048, 2048}, {2048, 1024, 4096}, {8192, 2048, 1024}}
	tiles := []int{256, 512}
	if smoke {
		shapes = []shape{{1024, 512, 512}}
		tiles = []int{256}
	}
	locPairs := [][]model.Loc{
		{model.OnHost, model.OnHost, model.OnHost},
		{model.OnDevice, model.OnHost, model.OnHost},
	}
	var cells []eval.MeasureCell
	for _, s := range shapes {
		for _, locs := range locPairs {
			p := eval.Problem{
				Routine: "dgemm", Dtype: kernelmodel.F64, M: s.m, N: s.n, K: s.k,
				Locs: append([]model.Loc(nil), locs...), Tag: "mirror",
			}
			q := eval.Problem{
				Routine: "dgemm", Dtype: kernelmodel.F64, M: s.n, N: s.m, K: s.k,
				Locs: []model.Loc{locs[1], locs[0], locs[2]}, Tag: "mirror",
			}
			for _, T := range tiles {
				cells = append(cells,
					eval.MeasureCell{Lib: eval.LibCoCoPeLia, P: p, T: T},
					eval.MeasureCell{Lib: eval.LibCoCoPeLia, P: q, T: T})
			}
		}
	}
	return cells
}

// rowConfig parameterizes one measured campaign row.
type rowConfig struct {
	workers   int
	intra     bool
	passes    int
	phases    bool
	normalize bool
}

// runRow measures one campaign configuration over the work-list: passes
// independent cold runs (fresh runner each), keeping the fastest pass's
// wall-clock numbers. The simulated counters must be identical across
// passes — a fresh runner replays the same deterministic campaign — and a
// drift fails the run. Best-of-passes filters out interference from other
// processes sharing the machine's cores, which otherwise dominates the
// variance of a sub-two-second measurement.
func runRow(tb *machine.Testbed, cells []eval.MeasureCell, cfg rowConfig) (campaignRow, error) {
	if cfg.passes < 1 {
		cfg.passes = 1
	}
	var best campaignRow
	for pass := 0; pass < cfg.passes; pass++ {
		r := eval.NewRunner(tb)
		r.IntraCell = cfg.intra
		r.NormalizeKeys = cfg.normalize
		// Hold every plan of the sweep (no eviction): eviction outcomes are
		// execution-order dependent, and the sweep pins its plan-cache
		// counters byte-identical across worker counts.
		r.PlanOpsBudget = campaignPlanBudget
		if cfg.intra && cfg.workers > 1 {
			r.Drain = parallel.NewPool(cfg.workers)
		}
		if cfg.phases {
			r.Clock = time.Now
		}
		var pool *parallel.Pool
		if cfg.workers > 1 {
			pool = parallel.NewPool(cfg.workers)
		}
		// Collections happen between rows, never inside the timed region: the
		// pre-row GC shrinks the live set to a few MB, which would otherwise
		// reset the pacer goal low enough to guarantee one collection ~30MB
		// into the row. The second GC finishes the first one's concurrent
		// sweep so no lazy span sweeping lands in the measurement either. A
		// row-pass allocates a few hundred MB at most, so running it
		// collection-free is cheap insurance, not a memory risk.
		runtime.GC()
		runtime.GC()
		gcOff := debug.SetGCPercent(-1)
		start := time.Now()
		err := r.MeasureBatch(pool, cells)
		wall := time.Since(start).Seconds()
		debug.SetGCPercent(gcOff)
		if err != nil {
			return campaignRow{}, err
		}

		hits, misses, evictions := r.PlanCacheStats()
		row := campaignRow{
			Workers: cfg.workers, IntraCell: cfg.intra, Passes: cfg.passes,
			Cells:  len(cells),
			Events: r.EventsProcessed(), WallSeconds: wall,
			CellsPerSec: float64(len(cells)) / wall, EventsPerSec: float64(r.EventsProcessed()) / wall,
			PlanHits: hits, PlanMisses: misses, PlanEvictions: evictions,
		}
		if total := hits + misses; total > 0 {
			row.PlanHitRate = float64(hits) / float64(total)
		}
		if cfg.phases {
			pb, enq, adv, other := r.PhaseSeconds()
			row.Phases = &campaignPhases{PlanBuild: pb, Enqueue: enq, Advance: adv, Other: other}
		}
		if pass > 0 && (row.Events != best.Events || row.PlanHits != best.PlanHits ||
			row.PlanMisses != best.PlanMisses || row.PlanEvictions != best.PlanEvictions) {
			return campaignRow{}, fmt.Errorf(
				"campaign drift across passes: pass %d saw events=%d plans=%d/%d/%d, pass 0 saw events=%d plans=%d/%d/%d",
				pass, row.Events, row.PlanHits, row.PlanMisses, row.PlanEvictions,
				best.Events, best.PlanHits, best.PlanMisses, best.PlanEvictions)
		}
		if pass == 0 || row.WallSeconds < best.WallSeconds {
			best = row
		}
	}
	return best, nil
}

// sameOutcome reports whether two rows simulated the identical campaign.
func sameOutcome(a, b campaignRow) bool {
	return a.Events == b.Events && a.PlanHits == b.PlanHits &&
		a.PlanMisses == b.PlanMisses && a.PlanEvictions == b.PlanEvictions
}

// logRow prints one row's throughput line.
func logRow(tag string, row campaignRow) {
	log.Printf("campaign[%s]: workers=%d intra=%-5v %d cells, %d events in %.2fs  (%.1f cells/s, %.3g events/s)",
		tag, row.Workers, row.IntraCell, row.Cells, row.Events, row.WallSeconds, row.CellsPerSec, row.EventsPerSec)
}

// runCampaign measures the DES campaign pipeline — the reference
// single-worker row with per-phase timing, a workers × intra-cell sweep
// pinned byte-identical to the reference, and the geometry-normalization
// demo — and writes the report JSON. With checkPath set it instead
// compares the reference row against the committed baseline and fails on
// regression (throughput down more than 15%, or any drift in the simulated
// counters).
func runCampaign(out string, smoke bool, passes int, checkPath string) error {
	tb := machine.TestbedI()
	cells := campaignCells(smoke)

	prevGC := debug.SetGCPercent(campaignGOGC)
	defer debug.SetGCPercent(prevGC)

	ref, err := runRow(tb, cells, rowConfig{workers: 1, passes: passes, phases: true})
	if err != nil {
		return err
	}
	logRow("ref", ref)
	ph := ref.Phases
	log.Printf("campaign[ref]: phases plan=%.2fs enqueue=%.2fs advance=%.2fs other=%.2fs",
		ph.PlanBuild, ph.Enqueue, ph.Advance, ph.Other)
	log.Printf("campaign[ref]: plan cache %d hits / %d misses / %d evictions (%.0f%% hit rate)",
		ref.PlanHits, ref.PlanMisses, ref.PlanEvictions, 100*ref.PlanHitRate)

	rep := campaignReport{Testbed: tb.Name, GOGC: campaignGOGC, Reps: 3, Reference: ref}
	for _, cfg := range []rowConfig{
		{workers: 1, intra: true},
		{workers: 2}, {workers: 2, intra: true},
		{workers: 8}, {workers: 8, intra: true},
	} {
		// Sweep rows get the same best-of-passes treatment as the reference:
		// multi-worker rows on a contended host swing far more than the
		// phase gate's 20% bound, and a single pass would trip -check on
		// scheduler noise rather than regressions.
		cfg.passes = passes
		// Every sweep row carries its own phase split, so regressions that
		// only show up under a particular worker or drain configuration are
		// attributable (and gated by -check) without a bisection run.
		cfg.phases = true
		row, err := runRow(tb, cells, cfg)
		if err != nil {
			return err
		}
		logRow("sweep", row)
		if !sameOutcome(row, ref) {
			return fmt.Errorf(
				"campaign not byte-identical at workers=%d intra=%v: events=%d plans=%d/%d/%d, reference events=%d plans=%d/%d/%d",
				cfg.workers, cfg.intra, row.Events, row.PlanHits, row.PlanMisses, row.PlanEvictions,
				ref.Events, ref.PlanHits, ref.PlanMisses, ref.PlanEvictions)
		}
		rep.Sweep = append(rep.Sweep, row)
	}

	norm, err := runRow(tb, normalizedCells(smoke), rowConfig{workers: 1, passes: 1, normalize: true, phases: true})
	if err != nil {
		return err
	}
	logRow("norm", norm)
	log.Printf("campaign[norm]: plan cache %d hits / %d misses (%.0f%% hit rate, mirror folding)",
		norm.PlanHits, norm.PlanMisses, 100*norm.PlanHitRate)
	if norm.PlanHitRate <= 2.0/3.0 {
		return fmt.Errorf("normalized work-list hit rate %.3f did not beat the 2/3 distinct-shape cap", norm.PlanHitRate)
	}
	rep.Normalized = &norm

	if checkPath != "" {
		return checkCampaign(checkPath, &rep)
	}
	if err := writeJSON(out, &rep); err != nil {
		return err
	}
	log.Printf("wrote %s", out)
	return nil
}

// checkCampaign compares a freshly measured campaign against the committed
// baseline: the reference row's simulated counters must match exactly (any
// drift means the simulation changed, which a perf PR must not do),
// throughput may regress at most 15%, and no phase of any row may run more
// than 20% slower than its baseline phase.
func checkCampaign(path string, rep *campaignReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base campaignReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	ref := rep.Reference
	b := base.Reference
	if !sameOutcome(ref, b) {
		return fmt.Errorf(
			"campaign drifted from baseline %s: events=%d plans=%d/%d/%d, baseline events=%d plans=%d/%d/%d",
			path, ref.Events, ref.PlanHits, ref.PlanMisses, ref.PlanEvictions,
			b.Events, b.PlanHits, b.PlanMisses, b.PlanEvictions)
	}
	if floor := 0.85 * b.CellsPerSec; ref.CellsPerSec < floor {
		return fmt.Errorf("campaign throughput regressed: %.1f cells/s < %.1f (85%% of baseline %.1f)",
			ref.CellsPerSec, floor, b.CellsPerSec)
	}
	if err := phaseGate("reference", ref.Phases, b.Phases); err != nil {
		return err
	}
	for _, row := range rep.Sweep {
		// Only single-worker rows are gated: with one worker a phase's
		// seconds are exact goroutine-local wall time, while multi-worker
		// rows on a contended host attribute descheduled time to whatever
		// phase was running, swinging far past any useful bound. The
		// multi-worker splits stay in the JSON for attribution.
		if row.Workers != 1 {
			continue
		}
		if bl := findSweepRow(base.Sweep, row.Workers, row.IntraCell); bl != nil {
			tag := fmt.Sprintf("sweep workers=%d intra=%v", row.Workers, row.IntraCell)
			if err := phaseGate(tag, row.Phases, bl.Phases); err != nil {
				return err
			}
		}
	}
	log.Printf("campaign check OK: %.1f cells/s vs baseline %.1f, counters identical, phases within bounds",
		ref.CellsPerSec, b.CellsPerSec)
	return nil
}

// findSweepRow locates the baseline sweep row with the same configuration.
func findSweepRow(rows []campaignRow, workers int, intra bool) *campaignRow {
	for i := range rows {
		if rows[i].Workers == workers && rows[i].IntraCell == intra {
			return &rows[i]
		}
	}
	return nil
}

// phaseGate fails when any phase of got runs more than 20% slower than the
// matching baseline phase. A 20ms absolute slack absorbs timer jitter on
// phases too small for a ratio to mean anything. Baselines written before
// per-row phase attribution carry no phase split; those rows pass vacuously.
func phaseGate(tag string, got, base *campaignPhases) error {
	if got == nil || base == nil {
		return nil
	}
	checks := []struct {
		name      string
		got, base float64
	}{
		{"plan_build", got.PlanBuild, base.PlanBuild},
		{"enqueue", got.Enqueue, base.Enqueue},
		{"advance", got.Advance, base.Advance},
		{"other", got.Other, base.Other},
	}
	for _, c := range checks {
		if limit := 1.20*c.base + 0.02; c.got > limit {
			return fmt.Errorf("campaign %s phase %s regressed: %.3fs > limit %.3fs (120%% of baseline %.3fs + 20ms slack)",
				tag, c.name, c.got, limit, c.base)
		}
	}
	return nil
}

// factorRow is one measured factorization cell. Every field except
// WallSeconds is a simulated outcome and must reproduce exactly: the
// schedule a task-graph planner emits is deterministic, so any drift in
// SimSeconds, Subkernels or the traffic bytes means the planner (or the
// executor replaying it) changed.
type factorRow struct {
	Routine     string  `json:"routine"`
	M           int     `json:"m"`
	N           int     `json:"n"`
	Tile        int     `json:"tile"`
	SimSeconds  float64 `json:"sim_seconds"`
	Gflops      float64 `json:"gflops"`
	Subkernels  int64   `json:"subkernels"`
	BytesH2D    int64   `json:"bytes_h2d"`
	BytesD2H    int64   `json:"bytes_d2h"`
	WallSeconds float64 `json:"wall_seconds"`
}

// factorReport is the JSON schema of results/bench-factor.json. Events is
// the total DES event count of the whole sweep — one number that pins the
// factorization plans' event-graph shapes the way the campaign baseline
// pins the flat gemm plans.
type factorReport struct {
	Testbed string      `json:"testbed"`
	Reps    int         `json:"reps"`
	Events  int64       `json:"events"`
	Rows    []factorRow `json:"rows"`
}

// factorTiles returns the tile sweep for the factorization mode.
func factorTiles(smoke bool) []int {
	if smoke {
		return []int{512}
	}
	return []int{512, 1024}
}

// runFactor sweeps the tiled factorization planners over the factor
// problem set on testbed I and either writes the report or, with checkPath
// set, gates the simulated outcomes against the committed baseline. The
// sweep is timing-only (no payload), so the whole mode runs in well under
// a second.
func runFactor(out string, smoke bool, checkPath string) error {
	tb := machine.TestbedI()
	r := eval.NewRunner(tb)
	rep := factorReport{Testbed: tb.Name, Reps: r.Reps}
	for _, p := range eval.FactorSet(smoke) {
		for _, T := range factorTiles(smoke) {
			start := time.Now()
			res, err := r.Measure(eval.LibCoCoPeLia, p, T)
			if err != nil {
				return fmt.Errorf("factor %s T=%d: %w", p.Name(), T, err)
			}
			row := factorRow{
				Routine: p.Routine, M: p.M, N: p.N, Tile: T,
				SimSeconds: res.Seconds,
				Gflops:     p.Flops() / res.Seconds / 1e9,
				Subkernels: res.Subkernels,
				BytesH2D:   res.BytesH2D, BytesD2H: res.BytesD2H,
				WallSeconds: time.Since(start).Seconds(),
			}
			log.Printf("factor %-6s n=%-5d T=%-4d sim %8.2f ms  %7.1f GFLOP/s  %4d kernels  %5.1f MB up  %5.1f MB down",
				row.Routine, row.N, row.Tile, row.SimSeconds*1e3, row.Gflops,
				row.Subkernels, float64(row.BytesH2D)/1e6, float64(row.BytesD2H)/1e6)
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Events = r.EventsProcessed()
	log.Printf("factor sweep: %d cells, %d DES events", len(rep.Rows), rep.Events)

	if checkPath != "" {
		return checkFactor(checkPath, &rep)
	}
	if err := writeJSON(out, &rep); err != nil {
		return err
	}
	log.Printf("wrote %s (%d rows)", out, len(rep.Rows))
	return nil
}

// checkFactor gates a fresh factorization sweep against the committed
// baseline. Unlike the BLAS and campaign gates there is no tolerance: every
// simulated field must match exactly (encoding/json round-trips float64
// shortest-form, so == on SimSeconds is an exact bit comparison), and the
// two sweeps must contain the same rows. Wall-clock columns are
// informational only.
func checkFactor(path string, rep *factorReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base factorReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(rep.Rows) != len(base.Rows) {
		return fmt.Errorf("factor sweep has %d rows, baseline %s has %d", len(rep.Rows), path, len(base.Rows))
	}
	for i, row := range rep.Rows {
		b := base.Rows[i]
		if row.Routine != b.Routine || row.M != b.M || row.N != b.N || row.Tile != b.Tile {
			return fmt.Errorf("factor row %d is %s %dx%d T=%d, baseline has %s %dx%d T=%d",
				i, row.Routine, row.M, row.N, row.Tile, b.Routine, b.M, b.N, b.Tile)
		}
		// Bit identity, not tolerance: the simulated time must round-trip
		// through the JSON baseline unchanged.
		if math.Float64bits(row.SimSeconds) != math.Float64bits(b.SimSeconds) ||
			row.Subkernels != b.Subkernels ||
			row.BytesH2D != b.BytesH2D || row.BytesD2H != b.BytesD2H {
			return fmt.Errorf(
				"factor %s n=%d T=%d drifted from baseline %s: sim=%v kernels=%d h2d=%d d2h=%d, baseline sim=%v kernels=%d h2d=%d d2h=%d",
				row.Routine, row.N, row.Tile, path,
				row.SimSeconds, row.Subkernels, row.BytesH2D, row.BytesD2H,
				b.SimSeconds, b.Subkernels, b.BytesH2D, b.BytesD2H)
		}
	}
	if rep.Events != base.Events {
		return fmt.Errorf("factor sweep processed %d DES events, baseline %s has %d", rep.Events, path, base.Events)
	}
	log.Printf("factor check OK: %d rows and %d events identical to baseline %s", len(rep.Rows), rep.Events, path)
	return nil
}

// writeJSON marshals v indented and writes it to path, creating the
// directory when needed.
func writeJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." && dir != "/" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measure times call (after one warm-up) and keeps the best of reps.
func measure(routine string, n, workers, reps int, call func() error) (entry, error) {
	if err := call(); err != nil {
		return entry{}, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := call(); err != nil {
			return entry{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	sec := best.Seconds()
	flops := 2 * float64(n) * float64(n) * float64(n)
	return entry{Routine: routine, Size: n, Workers: workers, Reps: reps,
		Seconds: sec, Gflops: flops / sec / 1e9}, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes in %q", s)
	}
	return out, nil
}

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func toF32(x []float64) []float32 {
	y := make([]float32, len(x))
	for i, v := range x {
		y[i] = float32(v)
	}
	return y
}
